"""Structured progress/telemetry events for experiment execution.

The executor narrates a run as a stream of :class:`ProgressEvent`
records through a single callback, so callers can drive terminal
output, log aggregation, or a dashboard without the executor knowing
which. :class:`ProgressTracker` owns the counters and the ETA estimate;
:class:`TextReporter` is the bundled plain-text sink.

Accounting invariant (tested): once the ``finished`` event fires,
``done + failed + cached == planned``.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import Callable, TextIO

__all__ = ["ProgressEvent", "ProgressTracker", "TextReporter"]

#: Event kinds, in rough lifecycle order.
KINDS = (
    "planned",  # once, before any cell runs; ``total`` is the grid size
    "cell-start",  # a cell began simulating
    "cell-done",  # a cell finished simulating (``wall_s`` is its cost)
    "cell-cached",  # a cell was served from the result cache
    "cell-retry",  # a cell attempt failed and will be retried
    "cell-failed",  # a cell exhausted its retries
    "finished",  # once, after the last cell settles
)


@dataclass(frozen=True)
class ProgressEvent:
    """One telemetry record; counter fields are post-event snapshots."""

    kind: str
    total: int
    done: int = 0
    cached: int = 0
    failed: int = 0
    app: str = ""
    label: str = ""
    key: str = ""
    attempt: int = 1
    wall_s: float | None = None
    #: Wall seconds spent *inside the simulator* for this cell
    #: (``RunResult.wall_s``); distinguishes simulate cost from
    #: pool/IPC overhead on ``cell-done`` events.
    sim_wall_s: float | None = None
    eta_s: float | None = None
    error: str | None = None

    @property
    def settled(self) -> int:
        """Cells that have reached a terminal state."""
        return self.done + self.cached + self.failed


class ProgressTracker:
    """Counts cell outcomes and emits events to an optional callback.

    ETA is the mean simulated-cell wall time so far times the number of
    unsettled cells, divided by the worker count — deliberately simple,
    it only needs to be honest about the order of magnitude.
    """

    def __init__(
        self,
        total: int,
        callback: Callable[[ProgressEvent], None] | None = None,
        workers: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.total = total
        self.callback = callback
        self.workers = max(1, workers)
        self.clock = clock
        self.done = 0
        self.cached = 0
        self.failed = 0
        self.retries = 0
        self.wall_s_total = 0.0
        self.started_at = clock()

    # -- derived ------------------------------------------------------
    @property
    def settled(self) -> int:
        return self.done + self.cached + self.failed

    def eta_s(self) -> float | None:
        simulated = self.done + self.failed
        if simulated == 0:
            return None
        mean = self.wall_s_total / simulated
        return mean * (self.total - self.settled) / self.workers

    # -- event emission -----------------------------------------------
    def _emit(self, kind: str, **kw) -> None:
        if self.callback is None:
            return
        self.callback(
            ProgressEvent(
                kind=kind,
                total=self.total,
                done=self.done,
                cached=self.cached,
                failed=self.failed,
                eta_s=self.eta_s(),
                **kw,
            )
        )

    def planned(self) -> None:
        self._emit("planned")

    def cell_start(self, spec, attempt: int = 1) -> None:
        self._emit(
            "cell-start", app=spec.app, label=spec.label, key=spec.key,
            attempt=attempt,
        )

    def cell_done(
        self,
        spec,
        wall_s: float,
        attempt: int = 1,
        sim_wall_s: float | None = None,
    ) -> None:
        self.done += 1
        self.wall_s_total += wall_s
        self._emit(
            "cell-done", app=spec.app, label=spec.label, key=spec.key,
            wall_s=wall_s, sim_wall_s=sim_wall_s, attempt=attempt,
        )

    def cell_cached(self, spec) -> None:
        self.cached += 1
        self._emit("cell-cached", app=spec.app, label=spec.label, key=spec.key)

    def cell_retry(self, spec, error: str, attempt: int) -> None:
        self.retries += 1
        self._emit(
            "cell-retry", app=spec.app, label=spec.label, key=spec.key,
            error=error, attempt=attempt,
        )

    def cell_failed(
        self, spec, error: str, wall_s: float = 0.0, attempt: int = 1
    ) -> None:
        self.failed += 1
        self.wall_s_total += wall_s
        self._emit(
            "cell-failed", app=spec.app, label=spec.label, key=spec.key,
            error=error, wall_s=wall_s, attempt=attempt,
        )

    def finished(self) -> None:
        self._emit("finished", wall_s=self.clock() - self.started_at)


@dataclass
class TextReporter:
    """Plain-text progress sink: one line per terminal cell event."""

    stream: TextIO = field(default_factory=lambda: sys.stderr)

    def __call__(self, event: ProgressEvent) -> None:
        if event.kind == "planned":
            print(f"planned {event.total} cells", file=self.stream)
            return
        if event.kind == "finished":
            print(
                f"finished: {event.done} simulated, {event.cached} cached, "
                f"{event.failed} failed in {event.wall_s:.1f}s",
                file=self.stream,
            )
            return
        if event.kind == "cell-start":
            return  # keep output to one line per settled cell
        width = len(str(event.total))
        head = f"[{event.settled:>{width}}/{event.total}] {event.app} {event.label}"
        eta = f" (eta {event.eta_s:.0f}s)" if event.eta_s is not None else ""
        if event.kind == "cell-done":
            print(f"{head} done in {event.wall_s:.2f}s{eta}", file=self.stream)
        elif event.kind == "cell-cached":
            print(f"{head} cached{eta}", file=self.stream)
        elif event.kind == "cell-retry":
            print(
                f"{head} attempt {event.attempt} failed ({event.error}); "
                "retrying",
                file=self.stream,
            )
        elif event.kind == "cell-failed":
            print(f"{head} FAILED: {event.error}{eta}", file=self.stream)
