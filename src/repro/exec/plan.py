"""Experiment planning: flatten study grids into content-addressed specs.

A study — the Section IV-A grid, a IV-B message-size sweep, or a IV-C
interference rerun — is just a set of independent simulation *cells*.
This module enumerates any of them into a flat, deterministic list of
:class:`RunSpec` records. A spec captures everything that determines a
cell's outcome (topology/network parameters, trace content, placement,
routing, seed, compute scale, background traffic, replay options) as a
stable content hash, so specs are

* **hashable / comparable** — two cells with the same inputs share a key;
* **addressable** — :mod:`repro.exec.cache` files results under the key;
* **portable** — plain frozen dataclasses that pickle cheaply for IPC.

Planned order is the executor's result order, and it matches the
original nested for-loops of the serial drivers, so parallel execution
reassembles into exactly the structures the serial path produced.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.config import SimulationConfig
from repro.mpi.trace import JobTrace

__all__ = [
    "CODE_SALT",
    "RunSpec",
    "ExperimentPlan",
    "config_digest",
    "trace_fingerprint",
    "plan_grid",
    "plan_sensitivity",
]

#: Cache-namespace salt folded into every spec key. Bump the version
#: suffix whenever a change alters simulation *results* (routing logic,
#: replay semantics, metric extraction, ...) or the shape of what a
#: cached ``RunResult`` carries, so stale cached cells are never served
#: for new code.
#:
#: History: v1 = original executor; v2 = repro.obs schema (RunResult
#: grew ``obs``/``TimeSeriesMetrics``, specs grew an ``obs`` field);
#: v3 = repro.faults (specs grew a ``faults`` field, RunResult.extra
#: carries fault telemetry); v4 = repro.flow (specs grew a ``backend``
#: field, RunResult grew ``backend``/``wall_s``); v5 = repro.cluster
#: (specs grew an ``epoch`` field — co-scheduled stream snapshots with
#: the stream seed and workload mix in the identity hash — and
#: RunResult.extra carries per-job epoch telemetry); v6 = vectorized
#: flow solver became the default (scalar/vector agree only to rel err
#: ~1e-12, so cached flow results may shift in the last bits) and the
#: fabric wake re-arm gained the one-ulp collapse guard. The solver
#: knob itself and ``flow_batch`` are pure performance knobs and stay
#: OUT of the identity, like ``scheduler``; v7 = the array flow fabric
#: became the default (object/array agree only to rel err far below
#: 1e-9, same last-bits argument as v6) and specs grew a
#: ``flow_params`` field (``None``/default normalise to the pre-v7
#: payload shape). The fabric knob stays OUT of the identity;
#: v8 = repro.mlcomms (the DL training app family: new collective
#: expansions and app names share the cache namespace, so the bump
#: keeps any pre-training-era cache from ever colliding with the new
#: family's cells).
CODE_SALT = "repro-exec/v8"

#: Default replay event budget, mirrored from ``run_single``.
DEFAULT_MAX_EVENTS = 50_000_000


def config_digest(config: SimulationConfig) -> str:
    """Stable hex digest of a :class:`SimulationConfig`.

    Dataclass fields are serialised to sorted-key JSON; float repr is
    exact in Python 3, so equal configs always digest identically.
    """
    payload = json.dumps(dataclasses.asdict(config), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()


def trace_fingerprint(trace: JobTrace) -> str:
    """Stable hex digest of a trace's simulated content.

    Covers the job name, rank count, and the full per-rank operation
    lists (ops are NamedTuples, so ``repr`` is canonical). ``meta`` is
    deliberately excluded: it annotates but never alters replay.
    """
    h = hashlib.sha256()
    h.update(trace.name.encode())
    h.update(b"|%d|" % trace.num_ranks)
    for rt in trace.ranks:
        h.update(repr(rt.ops).encode())
    return h.hexdigest()


@dataclass(frozen=True)
class RunSpec:
    """One content-addressed simulation cell.

    ``app`` is the plan-local trace key (the study's application name,
    suffixed with the scale for sweeps); the trace itself travels beside
    the spec in the :class:`ExperimentPlan` so specs stay tiny.
    ``background`` is a frozen dataclass (``BackgroundSpec``) or None;
    ``obs`` likewise (:class:`~repro.obs.recorder.ObsConfig`) — both are
    part of the identity hash, so an observed cell never shares a cache
    entry with an unobserved one. ``tags`` is free-form labelling (e.g.
    ``("scale=0.5",)``) that is part of the identity hash.

    ``scheduler`` picks the engine's event-queue implementation and is
    deliberately **excluded** from the identity hash: results are
    bit-identical under every scheduler (the cross-scheduler determinism
    test enforces this), so cells cached under one scheduler are valid
    hits for any other.

    ``faults`` is an optional :class:`~repro.faults.FaultPlan`. Its
    content digest enters the identity hash; an *empty* plan hashes as
    ``None`` (the runner executes the identical healthy code path for
    both, so they must share a cache entry).

    ``backend`` selects the simulation model (``"packet"`` or
    ``"flow"``, see :mod:`repro.flow`). Unlike ``scheduler`` it **does**
    change results, so it is part of the identity hash: a flow cell
    never shares a cache entry with its packet twin.

    ``epoch`` is an optional
    :class:`~repro.cluster.engine.EpochSpec` — a co-scheduled snapshot
    of a cluster stream (job names, rank spans, node allocations,
    stream seed, workload mix). It is part of the identity hash, so an
    epoch cell can never collide with a single-job cell, and epochs of
    different streams (different seed or mix) never share entries even
    if their snapshots happen to coincide.
    """

    app: str
    placement: str
    routing: str
    seed: int
    config_digest: str
    trace_digest: str
    compute_scale: float = 0.0
    background: Any = None
    record_sends: bool = False
    max_events: int | None = DEFAULT_MAX_EVENTS
    tags: tuple[str, ...] = ()
    obs: Any = None
    scheduler: str = "heap"
    faults: Any = None
    backend: str = "packet"
    epoch: Any = None
    #: Optional :class:`~repro.flow.routes.FlowParams` for flow cells.
    #: Part of the identity hash when it differs from the defaults —
    #: model knobs change results. ``None`` and the default params
    #: normalise to the same key, and packet cells always hash it as
    #: ``None``, so existing plans keep their keys.
    flow_params: Any = None

    @property
    def label(self) -> str:
        """Table-I style configuration label, e.g. ``cont-min``."""
        return f"{self.placement}-{self.routing}"

    @property
    def key(self) -> str:
        """Content hash addressing this cell (includes :data:`CODE_SALT`)."""
        background = (
            dataclasses.asdict(self.background)
            if dataclasses.is_dataclass(self.background)
            else self.background
        )
        obs = (
            dataclasses.asdict(self.obs)
            if dataclasses.is_dataclass(self.obs)
            else self.obs
        )
        faults = self.faults
        if faults is not None:
            faults = None if faults.is_empty() else faults.digest
        epoch = (
            dataclasses.asdict(self.epoch)
            if dataclasses.is_dataclass(self.epoch)
            else self.epoch
        )
        flow_params = None
        if self.flow_params is not None and self.backend == "flow":
            # Imported lazily: repro.flow's package import reaches back
            # into repro.exec at module-import time.
            from repro.flow.routes import FlowParams

            if self.flow_params != FlowParams():
                flow_params = dataclasses.asdict(self.flow_params)
        payload = json.dumps(
            {
                "salt": CODE_SALT,
                "app": self.app,
                "placement": self.placement,
                "routing": self.routing,
                "seed": self.seed,
                "config": self.config_digest,
                "trace": self.trace_digest,
                "compute_scale": self.compute_scale,
                "background": background,
                "record_sends": self.record_sends,
                "max_events": self.max_events,
                "tags": list(self.tags),
                "obs": obs,
                "faults": faults,
                "backend": self.backend,
                "epoch": epoch,
                # NB: `scheduler` is intentionally absent — it cannot
                # change results, so it must not split the cache.
                **({"flow_params": flow_params} if flow_params else {}),
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()


@dataclass(frozen=True)
class ExperimentPlan:
    """A flat, ordered batch of cells plus the data they need.

    ``traces`` maps each spec's ``app`` key to its :class:`JobTrace`;
    ``config`` is shared by every cell (one plan = one machine).
    """

    config: SimulationConfig
    specs: tuple[RunSpec, ...]
    traces: Mapping[str, JobTrace] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.specs)

    def trace_for(self, spec: RunSpec) -> JobTrace:
        return self.traces[spec.app]

    def keys(self) -> list[str]:
        return [spec.key for spec in self.specs]


def plan_grid(
    config: SimulationConfig,
    traces: Mapping[str, JobTrace],
    placements: Sequence[str],
    routings: Sequence[str],
    seed: int = 0,
    compute_scale: float = 0.0,
    background: Any = None,
    record_sends: bool = False,
    max_events: int | None = DEFAULT_MAX_EVENTS,
    obs: Any = None,
    scheduler: str = "heap",
    faults: Any = None,
    backend: str = "packet",
) -> ExperimentPlan:
    """Enumerate the placement x routing grid (paper Sections IV-A/IV-C).

    Cell order is app-major then placement then routing — exactly the
    serial ``TradeoffStudy.run`` loop nest.
    """
    cfg_digest = config_digest(config)
    fingerprints = {app: trace_fingerprint(t) for app, t in traces.items()}
    specs = tuple(
        RunSpec(
            app=app,
            placement=placement,
            routing=routing,
            seed=seed,
            config_digest=cfg_digest,
            trace_digest=fingerprints[app],
            compute_scale=compute_scale,
            background=background,
            record_sends=record_sends,
            max_events=max_events,
            obs=obs,
            scheduler=scheduler,
            faults=faults,
            backend=backend,
        )
        for app in traces
        for placement in placements
        for routing in routings
    )
    return ExperimentPlan(config=config, specs=specs, traces=dict(traces))


def plan_sensitivity(
    config: SimulationConfig,
    trace: JobTrace,
    scales: Sequence[float],
    configs: Sequence[tuple[str, str]],
    seed: int = 0,
    compute_scale: float = 0.0,
    max_events: int | None = DEFAULT_MAX_EVENTS,
    obs: Any = None,
    scheduler: str = "heap",
    faults: Any = None,
    backend: str = "packet",
) -> ExperimentPlan:
    """Enumerate the message-size sweep (paper Section IV-B).

    Each scale gets its own pre-scaled trace under the key
    ``"<name>@x<scale>"``; cell order is scale-major then config,
    matching the serial ``sensitivity_sweep`` loop nest.
    """
    cfg_digest = config_digest(config)
    specs: list[RunSpec] = []
    traces: dict[str, JobTrace] = {}
    for scale in scales:
        key = f"{trace.name}@x{scale:g}"
        scaled = trace.scaled(scale)
        traces[key] = scaled
        digest = trace_fingerprint(scaled)
        for placement, routing in configs:
            specs.append(
                RunSpec(
                    app=key,
                    placement=placement,
                    routing=routing,
                    seed=seed,
                    config_digest=cfg_digest,
                    trace_digest=digest,
                    compute_scale=compute_scale,
                    max_events=max_events,
                    tags=(f"scale={scale:g}",),
                    obs=obs,
                    scheduler=scheduler,
                    faults=faults,
                    backend=backend,
                )
            )
    return ExperimentPlan(config=config, specs=tuple(specs), traces=traces)
