"""Packet-level network model (the CODES substrate, paper Section II).

Messages are packetised and forwarded store-and-forward over the
dragonfly link fabric with credit-based backpressure: a packet may start
crossing a link only when the link serialiser is free *and* the downstream
virtual-channel buffer can hold the whole packet. The VC index of every
router-to-router hop equals the hop's position on the route, which strictly
increases, making the buffer wait-for graph acyclic (deadlock freedom).
"""

from repro.network.packet import CONTROL_PACKET_BYTES, Message, Packet, packetize
from repro.network.fabric import Fabric

__all__ = ["CONTROL_PACKET_BYTES", "Message", "Packet", "packetize", "Fabric"]
