"""Credit-based packet forwarding over the dragonfly link fabric.

Flow-control model (DESIGN.md §3):

* every directed link has one serialiser (shared by all VCs) and one
  downstream buffer per virtual channel;
* a packet may start crossing link ``L`` on VC ``v`` only when ``L``'s
  serialiser is free and ``L``'s VC-``v`` buffer has room for the whole
  packet; the packet's claim on its *input* buffer (the previous link's
  VC buffer) is released at that same instant (zero-latency credit
  return);
* the VC index of a router-to-router hop equals the hop's position on the
  route, which strictly increases along any path — the buffer wait-for
  graph is therefore acyclic and the network cannot deadlock;
* per-link *saturation time* accumulates while a link has packets queued
  and its serialiser idle but no queued packet can obtain downstream
  buffer space — i.e. the link is stalled purely because buffers along
  the path are exhausted (the paper's "link has used up all its
  buffers").

Routing happens when a packet reaches its source router (the hop after
the terminal-in link), so adaptive decisions observe live congestion.

Hot-path notes: link state lives in plain Python lists (faster item
access than NumPy for scalar work); per-(link, VC) buffer occupancy is a
flat ``defaultdict`` keyed by ``link * MAX_VCS + vc``.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Callable

from repro.config import NetworkParams
from repro.engine.simulator import Simulator
from repro.network.packet import Message, Packet, packetize
from repro.routing.base import RoutingPolicy
from repro.topology.dragonfly import Dragonfly

__all__ = ["Fabric", "MAX_VCS"]

#: Upper bound on VCs per link, used to flatten (link, vc) keys.
MAX_VCS = 16


class Fabric:
    """The simulated network: topology + flow control + routing."""

    def __init__(
        self,
        sim: Simulator,
        topo: Dragonfly,
        net: NetworkParams,
        routing: RoutingPolicy,
    ) -> None:
        if net.num_vcs > MAX_VCS:
            raise ValueError(f"num_vcs may not exceed {MAX_VCS}")
        self.sim = sim
        self.topo = topo
        self.net = net
        self.routing = routing
        self._cut_through = net.switching == "vct"

        n_links = topo.num_links
        bw, lat, buf = topo.link_profiles(net)
        # Plain lists: scalar indexing is the hot path.
        self.bw: list[float] = bw.tolist()
        self.lat: list[float] = (lat + net.router_delay_ns).tolist()
        self.buf: list[int] = buf.tolist()

        self.busy_until: list[float] = [0.0] * n_links
        self.queued_bytes: list[int] = [0] * n_links
        self._waitq: list[dict[int, deque[Packet]]] = [dict() for _ in range(n_links)]
        self._wait_count: list[int] = [0] * n_links
        self._rr_next: list[int] = [0] * n_links
        self._blocked_since: list[float] = [-1.0] * n_links
        self._buf_used: defaultdict[int, int] = defaultdict(int)

        #: Per-link transmitted bytes (the paper's "network traffic").
        self.bytes_tx: list[int] = [0] * n_links
        #: Per-link accumulated saturation time in ns.
        self.sat_ns: list[float] = [0.0] * n_links
        #: Per-link accumulated serialiser-busy time in ns. Durations are
        #: credited when a transmission *starts*; busy time elapsed only
        #: up to an instant T is ``busy_ns[l] - max(0, busy_until[l] - T)``
        #: (transmissions on one link never overlap).
        self.busy_ns: list[float] = [0.0] * n_links

        self.packets_injected = 0
        self.packets_delivered = 0
        self.messages_delivered = 0
        self.bytes_injected = 0
        self.bytes_delivered = 0

        #: Optional observability recorder (see :mod:`repro.obs`). When
        #: ``None`` (the default) every obs hook below is a skipped
        #: branch on an already-cold path, and results are bit-identical
        #: to a fabric without the hooks.
        self.obs = None

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def inject(self, msg: Message) -> None:
        """Queue a message at its source NIC at the current sim time."""
        msg.inject_time = self.sim.now
        first_link = self.topo.terminal_in(msg.src_node)
        for pkt in packetize(msg, self.net.packet_size, first_link):
            self.bytes_injected += pkt.size
            self.packets_injected += 1
            self._enqueue(pkt, first_link)

    def drain_saturation(self) -> None:
        """Close out still-open blocked intervals at the current time.

        Call once after the simulation stops so links that were stalled
        when the workload completed contribute their final interval.
        """
        now = self.sim.now
        blocked = self._blocked_since
        sat = self.sat_ns
        for lid, since in enumerate(blocked):
            if since >= 0.0:
                sat[lid] += now - since
                blocked[lid] = now  # keep open in case the sim resumes

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    @staticmethod
    def _vc_of(pkt: Packet, hop: int) -> int:
        """VC used on route[hop]: terminals use 0, hop h uses h-1."""
        if hop == 0 or hop == len(pkt.route) - 1:
            return 0
        return hop - 1

    def _enqueue(self, pkt: Packet, link: int) -> None:
        vc = self._vc_of(pkt, pkt.hop)
        q = self._waitq[link].get(vc)
        if q is None:
            q = self._waitq[link][vc] = deque()
        q.append(pkt)
        self._wait_count[link] += 1
        self.queued_bytes[link] += pkt.size
        self._try_transmit(link)

    def _try_transmit(self, link: int) -> None:
        if self._wait_count[link] == 0:
            return
        now = self.sim.now
        if self.busy_until[link] > now:
            return

        waitq = self._waitq[link]
        cap = self.buf[link]
        buf_used = self._buf_used
        base = link * MAX_VCS

        # Round-robin VC arbitration: first VC (>= the pointer, cyclic)
        # whose head packet fits in its downstream buffer wins. Links
        # with a single active VC (all terminal links, most others) take
        # the allocation-free fast path.
        chosen_vc = -1
        pkt: Packet | None = None
        if len(waitq) == 1:
            vc, q = next(iter(waitq.items()))
            if not q:
                return
            head = q[0]
            if buf_used[base + vc] + head.size <= cap:
                chosen_vc = vc
                pkt = head
            elif self.obs is not None:
                self.obs.on_buffer_full(now, link, vc, buf_used[base + vc], cap)
        else:
            start = self._rr_next[link]
            ranked = [
                ((vc - start) % MAX_VCS, vc, q) for vc, q in waitq.items() if q
            ]
            if not ranked:
                return
            ranked.sort()
            for _, vc, q in ranked:
                head = q[0]
                if buf_used[base + vc] + head.size <= cap:
                    chosen_vc = vc
                    pkt = head
                    break
                if self.obs is not None:
                    self.obs.on_buffer_full(now, link, vc, buf_used[base + vc], cap)

        if pkt is None:
            # Stalled on credits alone: open a saturation interval.
            if self._blocked_since[link] < 0.0:
                self._blocked_since[link] = now
                if self.obs is not None:
                    self.obs.on_stall_onset(now, link)
            return

        if self._blocked_since[link] >= 0.0:
            since = self._blocked_since[link]
            self.sat_ns[link] += now - since
            self._blocked_since[link] = -1.0
            if self.obs is not None:
                self.obs.on_stall_clear(now, link, now - since)

        waitq[chosen_vc].popleft()
        self._wait_count[link] -= 1
        self._rr_next[link] = chosen_vc + 1
        self.queued_bytes[link] -= pkt.size

        hop = pkt.hop
        if hop > 0:
            # Credit return: release the input buffer and kick upstream.
            prev = pkt.route[hop - 1]
            pvc = self._vc_of(pkt, hop - 1)
            buf_used[prev * MAX_VCS + pvc] -= pkt.size
            self._try_transmit(prev)

        buf_used[base + self._vc_of(pkt, hop)] += pkt.size
        duration = pkt.size / self.bw[link]
        end = now + duration
        lat = self.lat[link]
        if self._cut_through:
            # Virtual cut-through: the transmission cannot *finish*
            # before the packet's tail has streamed in from upstream,
            # but its header moves on after just the hop latency.
            if pkt.tail_time > end:
                end = pkt.tail_time
            route = pkt.route
            is_final = len(route) > 1 and hop == len(route) - 1
            arrival = end + lat if is_final else now + lat
        else:
            arrival = end + lat
        pkt.tail_time = end + lat
        self.busy_until[link] = end
        self.busy_ns[link] += end - now
        self.bytes_tx[link] += pkt.size
        self.sim.at(end, self._tx_done, link)
        self.sim.at(arrival, self._arrive, pkt)
        if hop == 0 and pkt.last:
            self.sim.at(end, self._notify_injected, pkt.msg)

    def _tx_done(self, link: int) -> None:
        self._try_transmit(link)

    def _notify_injected(self, msg: Message) -> None:
        msg.injected_time = self.sim.now
        if msg.on_injected is not None:
            msg.on_injected(msg, self.sim.now)

    def _arrive(self, pkt: Packet) -> None:
        pkt.hop += 1
        route = pkt.route
        msg = pkt.msg

        if pkt.hop == 1 and len(route) == 1:
            # At the source router: let the routing policy fill in the rest.
            src_router = self.topo.router_of(msg.src_node)
            rest = self.routing.route(self, src_router, msg.dst_node, pkt.size)
            rr_hops = len(rest) - 1
            if rr_hops > self.net.num_vcs:
                raise RuntimeError(
                    f"route needs {rr_hops} VCs but only "
                    f"{self.net.num_vcs} configured"
                )
            route.extend(rest)

        if pkt.hop == len(route):
            # Crossed the terminal-out link: the node consumed the packet.
            last = route[-1]
            self._buf_used[last * MAX_VCS] -= pkt.size
            self._try_transmit(last)
            self.packets_delivered += 1
            self.bytes_delivered += pkt.size
            msg.arrived_bytes += pkt.size
            msg.hop_sum += len(route) - 2
            if msg.arrived_bytes >= msg.wire_size:
                msg.delivered_time = self.sim.now
                self.messages_delivered += 1
                if msg.on_delivered is not None:
                    msg.on_delivered(msg, self.sim.now)
            return

        self._enqueue(pkt, route[pkt.hop])
