"""Credit-based packet forwarding over the dragonfly link fabric.

Flow-control model (DESIGN.md §3):

* every directed link has one serialiser (shared by all VCs) and one
  downstream buffer per virtual channel;
* a packet may start crossing link ``L`` on VC ``v`` only when ``L``'s
  serialiser is free and ``L``'s VC-``v`` buffer has room for the whole
  packet; the packet's claim on its *input* buffer (the previous link's
  VC buffer) is released at that same instant (zero-latency credit
  return);
* the VC index of a router-to-router hop equals the hop's position on the
  route, which strictly increases along any path — the buffer wait-for
  graph is therefore acyclic and the network cannot deadlock;
* per-link *saturation time* accumulates while a link has packets queued
  and its serialiser idle but no queued packet can obtain downstream
  buffer space — i.e. the link is stalled purely because buffers along
  the path are exhausted (the paper's "link has used up all its
  buffers").

Routing happens when a packet reaches its source router (the hop after
the terminal-in link), so adaptive decisions observe live congestion.

Hot-path notes: link state lives in plain Python lists (faster item
access than NumPy for scalar work); per-(link, VC) buffer occupancy is a
flat list indexed by ``link * MAX_VCS + vc``.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.config import NetworkParams
from repro.engine.simulator import Simulator
from repro.network.packet import _POOL, _POOL_MAX, Message, Packet, packetize
from repro.routing.base import RoutingPolicy
from repro.topology.dragonfly import Dragonfly

__all__ = ["Fabric", "MAX_VCS"]

#: Upper bound on VCs per link, used to flatten (link, vc) keys.
MAX_VCS = 16


class Fabric:
    """The simulated network: topology + flow control + routing."""

    def __init__(
        self,
        sim: Simulator,
        topo: Dragonfly,
        net: NetworkParams,
        routing: RoutingPolicy,
    ) -> None:
        if net.num_vcs > MAX_VCS:
            raise ValueError(f"num_vcs may not exceed {MAX_VCS}")
        self.sim = sim
        self.topo = topo
        self.net = net
        self.routing = routing
        self._cut_through = net.switching == "vct"

        n_links = topo.num_links
        bw, lat, buf = topo.link_profiles(net)
        # Plain lists: scalar indexing is the hot path.
        self.bw: list[float] = bw.tolist()
        self.lat: list[float] = (lat + net.router_delay_ns).tolist()
        self.buf: list[int] = buf.tolist()

        self.busy_until: list[float] = [0.0] * n_links
        self.queued_bytes: list[int] = [0] * n_links
        self._waitq: list[dict[int, deque[Packet]]] = [dict() for _ in range(n_links)]
        self._wait_count: list[int] = [0] * n_links
        self._rr_next: list[int] = [0] * n_links
        self._blocked_since: list[float] = [-1.0] * n_links
        # Flat (link, VC) buffer occupancy: list indexing beats dict
        # hashing at several lookups per transmission.
        self._buf_used: list[int] = [0] * (n_links * MAX_VCS)
        # Elided completion-kick state: when a transmission starts with
        # no waiters, its `_tx_done` push is skipped but its tie-break
        # sequence number is *reserved* (`_kick_seq`, with the would-be
        # fire time in `_kick_time`). A later `_enqueue` on the busy link
        # materialises the kick in exactly that reserved (time, seq)
        # slot, so the executed event order is bit-identical to the
        # eager schedule. -1 means "no reservation outstanding".
        self._kick_seq: list[int] = [-1] * n_links
        self._kick_time: list[float] = [0.0] * n_links

        #: Per-link transmitted bytes (the paper's "network traffic").
        self.bytes_tx: list[int] = [0] * n_links
        #: Per-link accumulated saturation time in ns.
        self.sat_ns: list[float] = [0.0] * n_links
        #: Per-link accumulated serialiser-busy time in ns. Durations are
        #: credited when a transmission *starts*; busy time elapsed only
        #: up to an instant T is ``busy_ns[l] - max(0, busy_until[l] - T)``
        #: (transmissions on one link never overlap).
        self.busy_ns: list[float] = [0.0] * n_links

        self.packets_injected = 0
        self.packets_delivered = 0
        self.messages_delivered = 0
        self.bytes_injected = 0
        self.bytes_delivered = 0

        #: Optional observability recorder (see :mod:`repro.obs`). When
        #: ``None`` (the default) every obs hook below is a skipped
        #: branch on an already-cold path, and results are bit-identical
        #: to a fabric without the hooks.
        self.obs = None

        #: Per-link liveness (see :mod:`repro.faults`). Always allocated
        #: so the hot path pays exactly one list probe per forwarded hop;
        #: with no faults the branch is never taken and the event stream
        #: is bit-identical to a fabric without fault support.
        self.link_down: list[bool] = [False] * n_links
        #: Bumped by every applied fault; failure-aware routing policies
        #: rebuild their degraded tables when it changes.
        self.fault_epoch = 0
        self.faults_applied = 0
        self.packets_rerouted = 0

        self._bind_hot_path()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    # inject(msg) is built by _bind_hot_path (a closure, like the rest
    # of the per-packet path).

    def drain_saturation(self) -> None:
        """Close out still-open blocked intervals at the current time.

        Call once after the simulation stops so links that were stalled
        when the workload completed contribute their final interval.
        """
        now = self.sim.now
        blocked = self._blocked_since
        sat = self.sat_ns
        for lid, since in enumerate(blocked):
            if since >= 0.0:
                sat[lid] += now - since
                blocked[lid] = now  # keep open in case the sim resumes

    # ------------------------------------------------------------------
    # fault injection (cold path; see repro.faults and DESIGN.md §S15)
    # ------------------------------------------------------------------
    def apply_link_fault(self, link: int, bw_scale: float = 0.0) -> None:
        """Fail one directed link now (``bw_scale == 0``) or degrade it.

        Fail-stop semantics: a transmission already on the wire
        completes and its packet arrives; packets *queued* on the dead
        link are flushed and re-routed from the router they sit on, and
        packets still upstream are caught by the liveness probe when
        they reach the dead hop. A degrade multiplies the link's
        bandwidth in place — queued and future packets serialise slower,
        the in-flight one keeps its committed completion time.
        """
        if self.topo.links.kind_of(link).is_terminal:
            raise ValueError(
                f"link {link} is a terminal link and cannot be faulted"
            )
        now = self.sim.now
        self.fault_epoch += 1
        self.faults_applied += 1
        if self.obs is not None:
            self.obs.on_fault(now, link, bw_scale)
        if bw_scale > 0.0:
            self.bw[link] *= bw_scale
            return
        if self.link_down[link]:
            return
        self.link_down[link] = True
        # A dead link can never transmit again: close its open stall
        # interval (if any) so saturation accounting stays exact.
        since = self._blocked_since[link]
        if since >= 0.0:
            self.sat_ns[link] += now - since
            self._blocked_since[link] = -1.0
            if self.obs is not None:
                self.obs.on_stall_clear(now, link, now - since)
        # Drop any elided-kick reservation; nothing will ever enqueue on
        # this link again, so the reserved slot simply goes unused.
        self._kick_seq[link] = -1
        # Flush the waiters deterministically (VC order, FIFO within a
        # VC), then re-route each from the router it is parked on. The
        # flush completes before any re-route so a transmit cascade
        # triggered by one re-routed packet cannot reorder the rest.
        if self._wait_count[link]:
            waitq = self._waitq[link]
            flushed: list[Packet] = []
            for vc in sorted(waitq):
                q = waitq[vc]
                while q:
                    pkt = q.popleft()
                    flushed.append(pkt)
            waitq.clear()
            self._wait_count[link] -= len(flushed)
            for pkt in flushed:
                self.queued_bytes[link] -= pkt.size
            for pkt in flushed:
                self._reroute(pkt)

    def _reroute(self, pkt: Packet) -> None:
        """Replace a packet's remaining route and re-enqueue it.

        The packet sits at hop ``h`` — it has crossed ``route[h-1]`` and
        still holds that link's VC buffer claim — and ``route[h]`` is
        dead. The suffix from ``h`` on is recomputed from the current
        router. The buffer claim stays consistent: its release VC on the
        next transmit depends only on ``h`` and whether the *new* route
        ends there, which matches the claim made on the old route
        (``h-1`` can be neither 0 nor the old last index, since
        terminal links never die).
        """
        route = pkt.route
        hop = pkt.hop
        msg = pkt.msg
        here = self.topo.links._dst[route[hop - 1]]
        rest = self.routing.route(self, here, msg.dst_node, pkt.size)
        if hop + len(rest) - 2 > self.net.num_vcs:
            raise RuntimeError(
                f"re-route at hop {hop} needs {hop + len(rest) - 2} VCs "
                f"but only {self.net.num_vcs} configured (fault detour "
                "exceeds the VC budget)"
            )
        del route[hop:]
        route.extend(rest)
        nxt = route[hop]
        if self.link_down[nxt]:
            raise RuntimeError(
                f"routing policy {self.routing.name!r} routed onto dead "
                f"link {nxt}; faulted runs require the fault-aware "
                "policies (repro.faults.make_fault_aware_routing)"
            )
        self.packets_rerouted += 1
        if self.obs is not None:
            self.obs.on_reroute(self.sim.now, nxt, len(rest))
        self._enqueue(pkt, nxt)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    @staticmethod
    def _vc_of(pkt: Packet, hop: int) -> int:
        """VC used on route[hop]: terminals use 0, hop h uses h-1."""
        if hop == 0 or hop == len(pkt.route) - 1:
            return 0
        return hop - 1

    def _enqueue(self, pkt: Packet, link: int) -> None:
        hop = pkt.hop
        vc = 0 if hop == 0 or hop == len(pkt.route) - 1 else hop - 1
        q = self._waitq[link].get(vc)
        if q is None:
            q = self._waitq[link][vc] = deque()
        q.append(pkt)
        self._wait_count[link] += 1
        self.queued_bytes[link] += pkt.size
        if self.busy_until[link] > self.sim.now:
            # Mid-transmission: arbitration can only happen at the
            # serialiser's completion. If that completion kick was
            # elided (no waiters at transmission start), materialise it
            # now under its reserved sequence number — it lands exactly
            # where the eager schedule would have put it.
            seq = self._kick_seq[link]
            if seq >= 0:
                self._kick_seq[link] = -1
                self.sim.at_reserved(
                    self._kick_time[link], seq, self._try_transmit, link
                )
            return
        self._try_transmit(link)

    def _bind_hot_path(self) -> None:
        """Compile the transmit/arrive hot path into closures.

        ``_try_transmit`` and ``_arrive`` together execute a few hundred
        thousand times per run and each read ~20 ``self`` attributes per
        call. Binding the link-state containers into closure cells turns
        every one of those dict lookups into a LOAD_DEREF, and pushing
        the closures (instead of freshly bound methods) into event
        tuples drops an allocation per scheduled event.

        Safe because every captured object is only ever item-mutated,
        never rebound (``sim``/``topo``/``net``/``routing`` are assigned
        once in ``__init__``). The lone exception is ``obs``: anything
        that rebinds ``fabric.obs`` (the recorder's install) must call
        ``_bind_hot_path()`` again so the closures pick up the new
        recorder. The closures are instance attributes shadowing
        nothing: they *are* the only implementation.
        """
        obs = self.obs
        fab = self
        sim = self.sim
        push = sim._push
        max_vcs = MAX_VCS
        wait_count = self._wait_count
        busy_until = self.busy_until
        waitqs = self._waitq
        caps = self.buf
        buf_used = self._buf_used
        blocked = self._blocked_since
        sat_ns = self.sat_ns
        rr_next = self._rr_next
        queued_bytes = self.queued_bytes
        bws = self.bw
        lats = self.lat
        cut_through = self._cut_through
        kick_seq = self._kick_seq
        kick_time = self._kick_time
        bytes_tx = self.bytes_tx
        busy_ns = self.busy_ns
        tx_done_notify = self._tx_done_notify
        notify_injected = self._notify_injected
        node_router = self.topo._node_router
        terminal_in = self.topo._terminal_in_l
        packet_size = self.net.packet_size
        route_fn = self.routing.route
        num_vcs = self.net.num_vcs
        link_down = self.link_down
        reroute = self._reroute
        pool = _POOL
        pool_max = _POOL_MAX
        make_deque = deque
        # Immutable, so one args tuple per link serves every kick event
        # ever pushed (saves an allocation per push).
        link_args = [(lid,) for lid in range(len(caps))]

        def inject(msg: Message) -> None:
            """Queue a message at its source NIC at the current sim time."""
            now = sim.now
            msg.inject_time = now
            link = terminal_in[msg.src_node]
            packets = packetize(msg, packet_size, link)
            fab.bytes_injected += msg.wire_size
            fab.packets_injected += len(packets)
            # Inlined _enqueue (keep in sync) with the hop-0 VC
            # constant-folded to 0: injection is a straight-line burst
            # of appends.
            waitq = waitqs[link]
            q = waitq.get(0)
            if q is None:
                q = waitq[0] = make_deque()
            append = q.append
            for pkt in packets:
                append(pkt)
                wait_count[link] += 1
                queued_bytes[link] += pkt.size
                if busy_until[link] > now:
                    seq = kick_seq[link]
                    if seq >= 0:
                        kick_seq[link] = -1
                        # kick_time is the busy end > now: at_reserved's
                        # guard cannot fire, so push directly.
                        push((kick_time[link], seq, try_transmit, link_args[link]))
                    continue
                try_transmit(link)

        def try_transmit(link: int) -> None:
            if wait_count[link] == 0:
                return
            now = sim.now
            if busy_until[link] > now:
                return

            waitq = waitqs[link]
            cap = caps[link]
            base = link * max_vcs

            # Round-robin VC arbitration: first VC (>= the pointer,
            # cyclic) whose head packet fits in its downstream buffer
            # wins. Links with a single active VC (all terminal links,
            # most others) take the allocation-free fast path.
            chosen_vc = -1
            pkt = None
            if len(waitq) == 1:
                # VC 0 probe first (terminal links and first router hops
                # — the bulk); fall back to walking the sole entry.
                q = waitq.get(0)
                if q is None:
                    for vc, q in waitq.items():  # sole entry
                        break
                else:
                    vc = 0
                if not q:
                    return
                head = q[0]
                used = buf_used[base + vc]
                if used + head.size <= cap:
                    chosen_vc = vc
                    pkt = head
                elif obs is not None:
                    obs.on_buffer_full(now, link, vc, used, cap)
            else:
                # Allocation-free cyclic scan from the pointer: visits
                # VCs in exactly the order the old sorted rank list did,
                # so the winner and the obs on_buffer_full sequence are
                # unchanged.
                start = rr_next[link]
                if start >= max_vcs:
                    start = 0
                get = waitq.get
                remaining = len(waitq)
                any_waiting = False
                vc = start
                for _ in range(max_vcs):
                    q = get(vc)
                    if q is not None:
                        if q:
                            any_waiting = True
                            head = q[0]
                            used = buf_used[base + vc]
                            if used + head.size <= cap:
                                chosen_vc = vc
                                pkt = head
                                break
                            if obs is not None:
                                obs.on_buffer_full(now, link, vc, used, cap)
                        remaining -= 1
                        if not remaining:
                            break
                    vc += 1
                    if vc == max_vcs:
                        vc = 0
                if not any_waiting:
                    return

            if pkt is None:
                # Stalled on credits alone: open a saturation interval.
                if blocked[link] < 0.0:
                    blocked[link] = now
                    if obs is not None:
                        obs.on_stall_onset(now, link)
                return

            since = blocked[link]
            if since >= 0.0:
                sat_ns[link] += now - since
                blocked[link] = -1.0
                if obs is not None:
                    obs.on_stall_clear(now, link, now - since)

            q.popleft()  # q is the chosen VC's deque on every path here
            wait_count[link] -= 1
            rr_next[link] = chosen_vc + 1
            size = pkt.size
            queued_bytes[link] -= size

            route = pkt.route
            route_len = len(route)
            hop = pkt.hop
            if hop > 0:
                # Credit return: release the input buffer and kick
                # upstream. The kick is elided when it could only hit
                # try_transmit's early-outs (idle upstream queue, or
                # serialiser mid-burst).
                prev = route[hop - 1]
                pvc = 0 if hop == 1 or hop == route_len else hop - 2
                buf_used[prev * max_vcs + pvc] -= size
                if wait_count[prev] and busy_until[prev] <= now:
                    try_transmit(prev)

            buf_used[
                base + (0 if hop == 0 or hop == route_len - 1 else hop - 1)
            ] += size
            duration = size / bws[link]
            end = now + duration
            lat = lats[link]
            if cut_through:
                # Virtual cut-through: the transmission cannot *finish*
                # before the packet's tail has streamed in from
                # upstream, but its header moves on after just the hop
                # latency.
                if pkt.tail_time > end:
                    end = pkt.tail_time
                arrival = (
                    end + lat
                    if (route_len > 1 and hop == route_len - 1)
                    else now + lat
                )
            else:
                arrival = end + lat
            pkt.tail_time = end + lat
            busy_until[link] = end
            busy_ns[link] += end - now
            bytes_tx[link] += size

            # Event pushes bypass Simulator.at (one frame per event
            # saved on the hottest schedule sites): `end` and `arrival`
            # are >= now by construction, and the explicit seq
            # arithmetic below assigns exactly the sequence numbers
            # at()/reserve_seq() would have.
            seq = sim._seq
            last_inject = hop == 0 and pkt.last
            if last_inject and arrival != end:
                # Fold the injected-notification into the completion
                # slot: one combined event replaces the kick + notify
                # pair. Safe because the pair occupied adjacent
                # (time, seq) slots at `end` with the arrival strictly
                # elsewhere, so no event could ever run between them.
                kick_seq[link] = -1
                push((end, seq, tx_done_notify, (link, pkt.msg)))
                push((arrival, seq + 1, arrive, (pkt,)))
                sim._seq = seq + 2
            elif wait_count[link] > 0:
                kick_seq[link] = -1
                push((end, seq, try_transmit, link_args[link]))
                push((arrival, seq + 1, arrive, (pkt,)))
                if last_inject:
                    push((end, seq + 2, notify_injected, (pkt.msg,)))
                    sim._seq = seq + 3
                else:
                    sim._seq = seq + 2
            else:
                # No waiters: elide the completion kick, reserving its
                # seq so a later _enqueue can materialise it in exactly
                # the eager schedule's slot (see _kick_seq in __init__).
                kick_seq[link] = seq
                kick_time[link] = end
                push((arrival, seq + 1, arrive, (pkt,)))
                if last_inject:
                    push((end, seq + 2, notify_injected, (pkt.msg,)))
                    sim._seq = seq + 3
                else:
                    sim._seq = seq + 2

        def arrive(pkt: Packet) -> None:
            hop = pkt.hop + 1
            pkt.hop = hop
            route = pkt.route
            msg = pkt.msg

            if hop == 1 and len(route) == 1:
                # At the source router: let the routing policy fill in
                # the rest.
                src_router = node_router[msg.src_node]
                rest = route_fn(fab, src_router, msg.dst_node, pkt.size)
                rr_hops = len(rest) - 1
                if rr_hops > num_vcs:
                    raise RuntimeError(
                        f"route needs {rr_hops} VCs but only "
                        f"{num_vcs} configured"
                    )
                route.extend(rest)

            route_len = len(route)
            if hop == route_len:
                # Crossed the terminal-out link: the node consumed the
                # packet.
                last = route[-1]
                size = pkt.size
                now = sim.now
                buf_used[last * max_vcs] -= size
                if wait_count[last] and busy_until[last] <= now:
                    try_transmit(last)
                fab.packets_delivered += 1
                fab.bytes_delivered += size
                msg.arrived_bytes += size
                msg.hop_sum += route_len - 2
                # The packet is dead: nothing queues, schedules, or
                # holds it past this point, so it can go back to the
                # free list before the delivery callback (which may
                # inject new messages that immediately recycle it).
                # Inlined release_packet (keep in sync).
                if len(pool) < pool_max:
                    pkt.msg = None  # don't pin the message alive
                    pool.append(pkt)
                if msg.arrived_bytes >= msg.wire_size:
                    msg.delivered_time = now
                    fab.messages_delivered += 1
                    if msg.on_delivered is not None:
                        msg.on_delivered(msg, now)
                return

            # Inlined _enqueue (keep in sync): one call frame per
            # forwarded hop is measurable at packet-event rates.
            link = route[hop]
            if link_down[link]:
                # The next channel died after this route was computed:
                # re-route from the router the packet is sitting on.
                reroute(pkt)
                return
            vc = hop - 1 if hop < route_len - 1 else 0  # hop >= 1 here
            waitq = waitqs[link]
            q = waitq.get(vc)
            if q is None:
                q = waitq[vc] = make_deque()
            q.append(pkt)
            wait_count[link] += 1
            queued_bytes[link] += pkt.size
            if busy_until[link] > sim.now:
                seq = kick_seq[link]
                if seq >= 0:
                    kick_seq[link] = -1
                    # kick_time >= busy end > now: at_reserved's guard
                    # cannot fire, so push directly.
                    push((kick_time[link], seq, try_transmit, link_args[link]))
                return
            try_transmit(link)

        self.inject: Callable[[Message], None] = inject
        self._try_transmit: Callable[[int], None] = try_transmit
        self._arrive: Callable[[Packet], None] = arrive

    def _tx_done_notify(self, link: int, msg: Message) -> None:
        """Completion kick + injected-notification folded into one event."""
        self._try_transmit(link)
        now = self.sim.now
        msg.injected_time = now
        if msg.on_injected is not None:
            msg.on_injected(msg, now)

    def _notify_injected(self, msg: Message) -> None:
        msg.injected_time = self.sim.now
        if msg.on_injected is not None:
            msg.on_injected(msg, self.sim.now)

