"""Messages and packets.

A :class:`Message` is the unit the MPI replay layer thinks in; the fabric
splits it into :class:`Packet` chunks no larger than the configured packet
size. Zero-byte messages (pure synchronisation) still cost one
``CONTROL_PACKET_BYTES`` header packet on the wire.
"""

from __future__ import annotations

from typing import Callable

__all__ = [
    "CONTROL_PACKET_BYTES",
    "Message",
    "Packet",
    "packetize",
    "acquire_packet",
    "release_packet",
    "pool_size",
]

#: Wire size charged for a zero-payload (control) message.
CONTROL_PACKET_BYTES = 64


class Message:
    """One application-level message in flight.

    The fabric fills in timing fields as the message progresses:
    ``inject_time`` when it is queued at the source NIC, ``injected_time``
    when its last packet has left the NIC, ``delivered_time`` when its
    last byte arrives at the destination node.
    """

    __slots__ = (
        "msg_id",
        "src_node",
        "dst_node",
        "size",
        "wire_size",
        "tag",
        "src_rank",
        "dst_rank",
        "job",
        "inject_time",
        "injected_time",
        "delivered_time",
        "arrived_bytes",
        "hop_sum",
        "num_packets",
        "on_injected",
        "on_delivered",
        "protocol",
        "ref",
    )

    def __init__(
        self,
        msg_id: int,
        src_node: int,
        dst_node: int,
        size: int,
        tag: int = 0,
        src_rank: int = -1,
        dst_rank: int = -1,
        job: int = 0,
    ) -> None:
        if size < 0:
            raise ValueError("message size must be non-negative")
        if src_node == dst_node:
            raise ValueError("self-sends never reach the network fabric")
        self.msg_id = msg_id
        self.src_node = src_node
        self.dst_node = dst_node
        self.size = size
        #: Bytes actually put on the wire (at least one control packet).
        #: A plain slot, not a property: the fabric reads it once per
        #: delivered packet, and ``size`` never changes after init.
        self.wire_size = size if size > 0 else CONTROL_PACKET_BYTES
        self.tag = tag
        self.src_rank = src_rank
        self.dst_rank = dst_rank
        self.job = job
        self.inject_time: float = -1.0
        self.injected_time: float = -1.0
        self.delivered_time: float = -1.0
        self.arrived_bytes: int = 0
        # Router-to-router hops summed over packets. The packet
        # fabric adds exact ints; the flow backend writes a
        # fractional (byte-weighted) equivalent.
        self.hop_sum: float = 0
        self.num_packets: int = 0
        self.on_injected: Callable[["Message", float], None] | None = None
        self.on_delivered: Callable[["Message", float], None] | None = None
        #: Wire role: "eager" data, or the rendezvous handshake's
        #: "rts" / "cts" control messages and "data" payload.
        self.protocol: str = "eager"
        #: Opaque protocol state attached by the replay engine.
        self.ref = None

    @property
    def avg_hops(self) -> float:
        """Mean router-to-router hops over this message's packets."""
        if self.num_packets == 0:
            return 0.0
        return self.hop_sum / self.num_packets

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Message(id={self.msg_id}, {self.src_node}->{self.dst_node}, "
            f"size={self.size}, tag={self.tag})"
        )


class Packet:
    """One wire-level chunk of a message.

    ``route`` is the ordered list of link ids the packet will traverse,
    beginning with the source terminal link. The remainder of the route is
    chosen by the routing policy when the packet reaches the source router
    (so adaptive decisions see up-to-date congestion). ``hop`` indexes the
    link currently being (or about to be) traversed.
    """

    __slots__ = ("msg", "size", "route", "hop", "last", "tail_time")

    def __init__(self, msg: Message, size: int, first_link: int, last: bool) -> None:
        self.msg = msg
        self.size = size
        self.route: list[int] = [first_link]
        self.hop = 0
        self.last = last
        #: When the packet's last byte arrived at its current position
        #: (drives the cut-through constraint: a downstream transmission
        #: cannot finish before the tail has caught up).
        self.tail_time = 0.0

    @property
    def rr_hops(self) -> int:
        """Router-to-router links on the (completed) route."""
        return len(self.route) - 2 if len(self.route) >= 2 else 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet(msg={self.msg.msg_id}, size={self.size}, "
            f"hop={self.hop}/{len(self.route)})"
        )


# ----------------------------------------------------------------------
# Packet free-list pool.
#
# Packets are short-lived flyweights: acquired at injection, dead the
# moment their bytes are credited at delivery. Recycling them through a
# per-process free list keeps large-message sweeps from churning the
# allocator. Invariants (see DESIGN.md S14):
#   * release only at delivery — a released packet is referenced by
#     nothing (not queued, not in flight, no scheduled event);
#   * acquire resets *every* slot (including reusing the route list in
#     place), so a recycled packet is indistinguishable from a fresh
#     one and pool warmth can never affect results;
#   * the pool is process-local, so worker processes never share state.
# ----------------------------------------------------------------------

_POOL: list[Packet] = []
#: Residency cap: beyond this, released packets fall to the GC. Sized
#: for the largest in-flight population seen in the paper's sweeps.
_POOL_MAX = 8192


def acquire_packet(msg: Message, size: int, first_link: int, last: bool) -> Packet:
    """Take a packet from the free list (or allocate one) and reset it."""
    if _POOL:
        pkt = _POOL.pop()
        pkt.msg = msg
        pkt.size = size
        route = pkt.route
        route.clear()
        route.append(first_link)
        pkt.hop = 0
        pkt.last = last
        pkt.tail_time = 0.0
        return pkt
    return Packet(msg, size, first_link, last)


def release_packet(pkt: Packet) -> None:
    """Return a dead packet to the free list (drop it if the pool is full)."""
    if len(_POOL) < _POOL_MAX:
        pkt.msg = None  # don't pin the message (and its callbacks) alive
        _POOL.append(pkt)


def pool_size() -> int:
    """Current free-list population (tests/diagnostics)."""
    return len(_POOL)


def packetize(msg: Message, packet_size: int, first_link: int) -> list[Packet]:
    """Split a message into packets of at most ``packet_size`` bytes."""
    total = msg.wire_size
    full, rem = divmod(total, packet_size)
    n = full + (1 if rem else 0)
    msg.num_packets = n
    # Inlined acquire_packet (keep in sync): one call frame per packet
    # is measurable at injection rates.
    pool = _POOL
    packets: list[Packet] = []
    append = packets.append
    last_i = n - 1
    for i in range(n):
        size = rem if (rem and i == last_i) else packet_size
        if pool:
            pkt = pool.pop()
            pkt.msg = msg
            pkt.size = size
            route = pkt.route
            route.clear()
            route.append(first_link)
            pkt.hop = 0
            pkt.last = i == last_i
            pkt.tail_time = 0.0
        else:
            pkt = Packet(msg, size, first_link, i == last_i)
        append(pkt)
    return packets
