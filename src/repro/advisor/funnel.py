"""The three-tier answer funnel behind :func:`suggest_placement`.

Tier 1 — **surrogate**: the fitted ridge model ranks every enumerated
candidate placement from feature vectors alone — thousands per second,
no simulation. Tier 2 — **flow screen**: the top ``screen_top``
survivors run on the flow backend as content-addressed epoch cells
(explicit node allocations, cached, batchable). Tier 3 — **packet
validate**: the top ``validate_top`` of those re-run on the packet
backend, and the final recommendation is the packet winner.

Each tier spends more per candidate and sees fewer candidates, so the
funnel's cost is dominated by a handful of full-fidelity runs while its
*reach* is the whole candidate set. Every simulated cell goes through
:func:`repro.exec.pool.execute_plan` with
:func:`repro.cluster.engine.simulate_epoch` as the runner, so results
land in the ordinary disk cache: re-advising is free, and the cluster
stream engine later hits the same entries.

``exhaustive=True`` additionally runs the flow backend over *every*
candidate (sharing cache keys with tier 2) and records whether the
funnel's answer matches the exhaustive optimum — the CI agreement gate.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.advisor.features import (
    Candidate,
    FeatureExtractor,
    enumerate_candidates,
)
from repro.advisor.model import RidgeSurrogate
from repro.cluster.engine import EpochSpec, merge_epoch_trace, simulate_epoch
from repro.config import SimulationConfig
from repro.exec.cache import ResultCache
from repro.exec.plan import (
    ExperimentPlan,
    RunSpec,
    config_digest,
    trace_fingerprint,
)
from repro.exec.pool import execute_plan
from repro.flow.routes import FlowParams
from repro.mpi.trace import JobTrace
from repro.placement.policies import PLACEMENT_NAMES

__all__ = [
    "FUNNEL_SCHEMA",
    "FunnelResult",
    "RankedCandidate",
    "TierReport",
    "suggest_placement",
]

FUNNEL_SCHEMA = "repro-advisor-funnel/v1"


@dataclass
class TierReport:
    """Cost accounting for one funnel tier."""

    name: str
    candidates: int
    wall_s: float
    #: Candidates processed per wall-clock second (the bench gate for
    #: the surrogate tier).
    rate: float
    #: Simulation tiers only: cells served from the disk cache vs.
    #: actually simulated.
    cached: int = 0
    simulated: int = 0


@dataclass
class RankedCandidate:
    """One candidate's scores as it moved through the funnel."""

    placement: str
    draw: int
    nodes: tuple[int, ...]
    predicted: float
    flow_ns: float | None = None
    packet_ns: float | None = None

    @property
    def label(self) -> str:
        return f"{self.placement}#{self.draw}"


@dataclass
class FunnelResult:
    """Everything :func:`suggest_placement` decided and measured."""

    app: str
    routing: str
    num_ranks: int
    chosen: RankedCandidate
    #: Every enumerated candidate in surrogate-rank order (best first).
    ranking: list[RankedCandidate]
    tiers: list[TierReport]
    seed: int
    #: Exhaustive flow-screen agreement check (``exhaustive=True``):
    #: the optimum candidate and whether the funnel matched it.
    exhaustive: dict | None = None
    meta: dict = field(default_factory=dict)

    @property
    def ranked(self) -> int:
        return len(self.ranking)

    @property
    def screened(self) -> int:
        return sum(1 for c in self.ranking if c.flow_ns is not None)

    @property
    def validated(self) -> int:
        return sum(1 for c in self.ranking if c.packet_ns is not None)

    def to_payload(self) -> dict:
        def cand(c: RankedCandidate) -> dict:
            return {
                "placement": c.placement,
                "draw": c.draw,
                "nodes": list(c.nodes),
                "predicted": c.predicted,
                "flow_ns": c.flow_ns,
                "packet_ns": c.packet_ns,
            }

        return {
            "schema": FUNNEL_SCHEMA,
            "app": self.app,
            "routing": self.routing,
            "num_ranks": self.num_ranks,
            "seed": self.seed,
            "chosen": cand(self.chosen),
            "counts": {
                "ranked": self.ranked,
                "screened": self.screened,
                "validated": self.validated,
            },
            "tiers": [
                {
                    "name": t.name,
                    "candidates": t.candidates,
                    "wall_s": t.wall_s,
                    "rate": t.rate,
                    "cached": t.cached,
                    "simulated": t.simulated,
                }
                for t in self.tiers
            ],
            "ranking": [cand(c) for c in self.ranking],
            "exhaustive": self.exhaustive,
            "meta": self.meta,
        }

    def save_json(self, path: str | Path) -> None:
        Path(path).write_text(
            json.dumps(self.to_payload(), indent=2, sort_keys=True) + "\n"
        )

    def format_table(self, top: int = 10) -> str:
        """Human-readable funnel summary for the CLI."""
        lines = [
            f"advisor funnel: app={self.app} routing={self.routing} "
            f"ranks={self.num_ranks}",
            f"{'tier':<12} {'cands':>6} {'wall_s':>9} {'rate/s':>10} "
            f"{'cached':>7} {'sim':>5}",
        ]
        for t in self.tiers:
            lines.append(
                f"{t.name:<12} {t.candidates:>6} {t.wall_s:>9.3f} "
                f"{t.rate:>10.1f} {t.cached:>7} {t.simulated:>5}"
            )
        lines.append("")
        lines.append(
            f"{'candidate':<12} {'predicted':>10} {'flow_ms':>10} "
            f"{'packet_ms':>10}"
        )
        for c in self.ranking[:top]:
            flow = f"{c.flow_ns / 1e6:.3f}" if c.flow_ns is not None else "-"
            pkt = (
                f"{c.packet_ns / 1e6:.3f}"
                if c.packet_ns is not None
                else "-"
            )
            mark = " <== chosen" if c is self.chosen else ""
            lines.append(
                f"{c.label:<12} {c.predicted:>10.4f} {flow:>10} "
                f"{pkt:>10}{mark}"
            )
        lines.append("")
        lines.append(
            f"recommendation: {self.chosen.placement} "
            f"(draw {self.chosen.draw}), nodes={list(self.chosen.nodes)}"
        )
        if self.exhaustive is not None:
            agree = self.exhaustive["agree_placement"]
            lines.append(
                f"exhaustive flow optimum: "
                f"{self.exhaustive['best_placement']}"
                f"#{self.exhaustive['best_draw']} — "
                f"{'agrees' if agree else 'DISAGREES'} with the funnel"
            )
        return "\n".join(lines)


def _epoch_plan(
    config: SimulationConfig,
    candidates: Sequence[Candidate],
    app_key: str,
    container: JobTrace,
    job_name: str,
    num_ranks: int,
    routing: str,
    backend: str,
    seed: int,
    trace_digest: str,
    cfg_digest: str,
    flow_params: FlowParams | None,
) -> ExperimentPlan:
    """One single-job epoch cell per candidate, on ``backend``.

    The epoch's explicit node allocation is what makes a candidate a
    first-class cell: same content-addressed caching, batching, and
    retry machinery as every other cell in the repo — and the same keys
    whether reached from the funnel, the exhaustive check, or a later
    cluster stream.
    """
    specs = tuple(
        RunSpec(
            app=app_key,
            placement=cand.placement,
            routing=routing,
            seed=seed,
            config_digest=cfg_digest,
            trace_digest=trace_digest,
            backend=backend,
            epoch=EpochSpec(
                jobs=((job_name, num_ranks, cand.nodes),),
                stream_seed=seed,
                mix="advisor-funnel",
            ),
            flow_params=flow_params if backend == "flow" else None,
        )
        for cand in candidates
    )
    return ExperimentPlan(
        config=config, specs=specs, traces={app_key: container}
    )


def _run_tier(
    name: str,
    config: SimulationConfig,
    candidates: Sequence[Candidate],
    backend: str,
    *,
    app_key: str,
    container: JobTrace,
    job_name: str,
    num_ranks: int,
    routing: str,
    seed: int,
    trace_digest: str,
    cfg_digest: str,
    flow_params: FlowParams | None,
    cache: ResultCache | None,
    max_workers: int,
    flow_batch: int,
    timeout_s: float | None,
) -> tuple[list[float], TierReport]:
    """Simulate every candidate on ``backend``; scores in input order."""
    plan = _epoch_plan(
        config,
        candidates,
        app_key,
        container,
        job_name,
        num_ranks,
        routing,
        backend,
        seed,
        trace_digest,
        cfg_digest,
        flow_params,
    )
    start = time.perf_counter()
    report = execute_plan(
        plan,
        max_workers=max_workers,
        cache=cache,
        timeout_s=timeout_s,
        runner=simulate_epoch,
        strict=True,
        flow_batch=flow_batch if backend == "flow" else 0,
    )
    wall = time.perf_counter() - start
    scores = [
        float(r.metrics.median_comm_time_ns) for r in report.results()
    ]
    tier = TierReport(
        name=name,
        candidates=len(candidates),
        wall_s=wall,
        rate=len(candidates) / wall if wall > 0 else 0.0,
        cached=report.cached,
        simulated=report.done,
    )
    return scores, tier


def suggest_placement(
    config: SimulationConfig,
    trace: JobTrace,
    routing: str,
    model: RidgeSurrogate,
    *,
    placements: Sequence[str] = PLACEMENT_NAMES,
    per_policy: int = 20,
    screen_top: int = 12,
    validate_top: int = 3,
    seed: int = 0,
    cache: ResultCache | str | None = None,
    max_workers: int = 1,
    flow_batch: int = 0,
    flow_params: FlowParams | None = None,
    timeout_s: float | None = None,
    exhaustive: bool = False,
) -> FunnelResult:
    """Recommend a placement for ``trace`` through the three-tier funnel.

    ``screen_top`` bounds the flow tier, ``validate_top`` the packet
    tier; ``validate_top=0`` skips packet validation and recommends the
    flow winner (``screen_top`` must stay ≥ 1 — the funnel never
    recommends from the surrogate alone). Ties at every tier break
    toward the better rank of the previous tier, so the whole funnel is
    deterministic in its inputs.
    """
    if screen_top < 1:
        raise ValueError("screen_top must be >= 1")
    if validate_top < 0:
        raise ValueError("validate_top must be >= 0")
    if isinstance(cache, str):
        cache = ResultCache(cache)

    num_ranks = trace.num_ranks
    candidates = enumerate_candidates(
        config, num_ranks, placements=placements,
        per_policy=per_policy, seed=seed,
    )

    # -- tier 1: surrogate ranking ------------------------------------
    start = time.perf_counter()
    fx = FeatureExtractor(config, trace, routing, flow_params)
    predictions = model.predict(fx.matrix(candidates))
    order = np.argsort(predictions, kind="stable")
    wall = time.perf_counter() - start
    tier1 = TierReport(
        name="surrogate",
        candidates=len(candidates),
        wall_s=wall,
        rate=len(candidates) / wall if wall > 0 else 0.0,
    )

    ranking = [
        RankedCandidate(
            placement=candidates[i].placement,
            draw=candidates[i].draw,
            nodes=candidates[i].nodes,
            predicted=float(predictions[i]),
        )
        for i in order
    ]
    by_nodes = {c.nodes: c for c in ranking}

    # Shared cell ingredients: one single-job container trace, one
    # trace digest, one config digest — only the epoch (the candidate's
    # node set) varies per spec.
    job_name = trace.name
    container = merge_epoch_trace([(job_name, trace)], f"advise:{job_name}")
    app_key = container.name
    tdigest = trace_fingerprint(container)
    cfg_digest = config_digest(config)

    def run_tier(
        name: str, cands: Sequence[Candidate], backend: str
    ) -> tuple[list[float], TierReport]:
        return _run_tier(
            name,
            config,
            cands,
            backend,
            app_key=app_key,
            container=container,
            job_name=job_name,
            num_ranks=num_ranks,
            routing=routing,
            seed=seed,
            trace_digest=tdigest,
            cfg_digest=cfg_digest,
            flow_params=flow_params,
            cache=cache,
            max_workers=max_workers,
            flow_batch=flow_batch,
            timeout_s=timeout_s,
        )

    # -- tier 2: flow screen ------------------------------------------
    screened = [candidates[i] for i in order[:screen_top]]
    flow_scores, tier2 = run_tier("flow-screen", screened, "flow")
    for cand, score in zip(screened, flow_scores):
        by_nodes[cand.nodes].flow_ns = score
    flow_order = sorted(
        range(len(screened)), key=lambda k: (flow_scores[k], k)
    )

    tiers = [tier1, tier2]

    # -- tier 3: packet validate --------------------------------------
    if validate_top > 0:
        finalists = [screened[k] for k in flow_order[:validate_top]]
        packet_scores, tier3 = run_tier("packet-val", finalists, "packet")
        for cand, score in zip(finalists, packet_scores):
            by_nodes[cand.nodes].packet_ns = score
        best = min(
            range(len(finalists)), key=lambda k: (packet_scores[k], k)
        )
        chosen = by_nodes[finalists[best].nodes]
        tiers.append(tier3)
    else:
        chosen = by_nodes[screened[flow_order[0]].nodes]

    # -- optional exhaustive flow check -------------------------------
    exhaustive_report: dict | None = None
    if exhaustive:
        all_scores, tier_ex = run_tier("flow-exhaust", candidates, "flow")
        best_i = min(
            range(len(candidates)), key=lambda k: (all_scores[k], k)
        )
        best_cand = candidates[best_i]
        chosen_i = next(
            k for k, c in enumerate(candidates) if c.nodes == chosen.nodes
        )
        exhaustive_report = {
            "best_placement": best_cand.placement,
            "best_draw": best_cand.draw,
            "best_nodes": list(best_cand.nodes),
            "best_flow_ns": all_scores[best_i],
            "chosen_flow_ns": all_scores[chosen_i],
            "agree_placement": best_cand.placement == chosen.placement,
            "agree_nodes": best_cand.nodes == chosen.nodes,
        }
        tiers.append(tier_ex)

    return FunnelResult(
        app=job_name,
        routing=routing,
        num_ranks=num_ranks,
        chosen=chosen,
        ranking=ranking,
        tiers=tiers,
        seed=seed,
        exhaustive=exhaustive_report,
        meta={
            "placements": list(placements),
            "per_policy": per_policy,
            "screen_top": screen_top,
            "validate_top": validate_top,
            "backend_screen": "flow",
            "backend_validate": "packet" if validate_top else None,
        },
    )
