"""Placement-advisor service: surrogate model + three-tier funnel (S20).

The paper closes by proposing a hybrid placement methodology driven by
the application's communication intensity; :mod:`repro.core.advisor`
answers that with the paper's hand-written rule table. This package
turns the rule table into a *service* a scheduler could hit at
production rates, following the SMART direction (PAPERS.md): a learned
surrogate over topology/placement/traffic features ranks candidate
placements orders of magnitude faster than simulation, and a screening
funnel keeps the ranking honest:

* :mod:`repro.advisor.features` — deterministic numeric vectors from
  (trace, topology, placement, routing): traffic descriptors from
  :func:`repro.core.advisor.characterize` plus locality/spread/expected
  link-load statistics from :mod:`repro.flow.routes` aggregates;
* :mod:`repro.advisor.model` — a pure-numpy ridge surrogate with
  versioned JSON save/load (``repro-advisor-model/v1``);
* :mod:`repro.advisor.store` — training-set assembly from the
  :class:`~repro.exec.cache.ResultCache` of accumulated RunResults;
* :mod:`repro.advisor.funnel` — the three-tier answer funnel
  (surrogate ranks thousands of candidates in milliseconds, the flow
  backend screens the top few dozen, the packet backend validates the
  top handful) behind :func:`suggest_placement`.

CLI: ``dragonfly-tradeoff advise --funnel``. Cluster integration: the
``surrogate`` placement policy of
:class:`~repro.cluster.scheduler.ClusterScheduler`.
"""

from repro.advisor.features import (
    FEATURE_NAMES,
    FeatureExtractor,
    enumerate_candidates,
)
from repro.advisor.funnel import FUNNEL_SCHEMA, FunnelResult, suggest_placement
from repro.advisor.model import MODEL_SCHEMA, RidgeSurrogate
from repro.advisor.store import TrainingSet, build_training_set, train_surrogate

__all__ = [
    "FEATURE_NAMES",
    "FUNNEL_SCHEMA",
    "MODEL_SCHEMA",
    "FeatureExtractor",
    "FunnelResult",
    "RidgeSurrogate",
    "TrainingSet",
    "build_training_set",
    "enumerate_candidates",
    "suggest_placement",
    "train_surrogate",
]
