"""Training-set assembly from accumulated RunResults.

The :class:`~repro.exec.cache.ResultCache` a study leaves behind is a
free training corpus: every cell is a (placement, routing, trace) run
with a measured median communication time. This module walks that cache
(via the corruption-tolerant ``iter_results`` scan), refeaturizes each
result with :class:`~repro.advisor.features.FeatureExtractor`, and fits
the ridge surrogate on ``log1p(median_comm_time_ns)``.

A cached :class:`~repro.core.runner.RunResult` records its app *name*
but not the trace content, so the caller supplies the traces keyed by
app name — and owns the contract that those traces match the ones the
cache was warmed with (same ranks, same message scaling). The CI
advisor-smoke job warms and trains in one script for exactly this
reason; results whose app is unknown or whose rank count disagrees with
the supplied trace are skipped and counted, never guessed at.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping

import numpy as np

from repro.advisor.features import NUM_FEATURES, FeatureExtractor
from repro.advisor.model import RidgeSurrogate
from repro.config import SimulationConfig
from repro.core.runner import RunResult
from repro.exec.cache import ResultCache
from repro.mpi.trace import JobTrace

__all__ = ["TrainingSet", "build_training_set", "train_surrogate"]


@dataclass
class TrainingSet:
    """Feature matrix + targets assembled from cached results."""

    features: np.ndarray
    targets: np.ndarray
    #: Results rejected during assembly, keyed by reason.
    skipped: dict[str, int] = field(default_factory=dict)
    #: Samples contributed per app name.
    per_app: dict[str, int] = field(default_factory=dict)

    @property
    def n_samples(self) -> int:
        return int(self.features.shape[0])

    def summary(self) -> str:
        apps = ", ".join(
            f"{name}={count}" for name, count in sorted(self.per_app.items())
        )
        skipped = sum(self.skipped.values())
        return (
            f"{self.n_samples} samples ({apps or 'none'}), "
            f"{skipped} skipped"
        )


def build_training_set(
    results: Iterable[RunResult],
    config: SimulationConfig,
    traces: Mapping[str, JobTrace],
) -> TrainingSet:
    """Featurize every usable result.

    A result is usable when its app has a supplied trace of matching
    rank count, it has per-rank node allocations, it is a single-job
    run (epoch-merged cluster cells mix several jobs into one metric —
    no single placement to learn from), and its target metric is a
    positive finite number.
    """
    extractors: dict[tuple[str, str], FeatureExtractor] = {}
    rows: list[np.ndarray] = []
    targets: list[float] = []
    skipped: dict[str, int] = {}
    per_app: dict[str, int] = {}

    def skip(reason: str) -> None:
        skipped[reason] = skipped.get(reason, 0) + 1

    for result in results:
        if not isinstance(result, RunResult):
            skip("not_a_run_result")
            continue
        if "epoch_jobs" in result.extra:
            skip("epoch_merged")
            continue
        trace = traces.get(result.app)
        if trace is None:
            skip("unknown_app")
            continue
        if not result.nodes:
            skip("no_allocation")
            continue
        if trace.num_ranks != len(result.nodes):
            skip("rank_mismatch")
            continue
        if result.routing not in ("min", "adp"):
            skip("unknown_routing")
            continue
        target = float(result.metrics.median_comm_time_ns)
        if not math.isfinite(target) or target <= 0.0:
            skip("bad_target")
            continue
        ctx = (result.app, result.routing)
        fx = extractors.get(ctx)
        if fx is None:
            fx = FeatureExtractor(config, trace, result.routing)
            extractors[ctx] = fx
        rows.append(fx.vector(result.nodes))
        targets.append(math.log1p(target))
        per_app[result.app] = per_app.get(result.app, 0) + 1

    if rows:
        features = np.stack(rows)
        y = np.asarray(targets, dtype=np.float64)
    else:
        features = np.empty((0, NUM_FEATURES), dtype=np.float64)
        y = np.empty((0,), dtype=np.float64)
    return TrainingSet(
        features=features, targets=y, skipped=skipped, per_app=per_app
    )


def train_surrogate(
    config: SimulationConfig,
    traces: Mapping[str, JobTrace],
    cache: ResultCache,
    alpha: float = 1.0,
    min_samples: int = 8,
) -> tuple[RidgeSurrogate, TrainingSet]:
    """Scan a disk cache and fit the surrogate on what it holds.

    Raises ``ValueError`` when fewer than ``min_samples`` usable results
    survive the scan — a surrogate fitted on a handful of points would
    rank confidently and wrongly.
    """
    training = build_training_set(cache.iter_results(), config, traces)
    if training.n_samples < min_samples:
        raise ValueError(
            f"cache yields only {training.n_samples} usable samples "
            f"(need {min_samples}): {training.summary()}"
        )
    model = RidgeSurrogate.fit(
        training.features, training.targets, alpha=alpha
    )
    return model, training
