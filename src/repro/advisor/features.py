"""Deterministic feature vectors for the placement surrogate.

A candidate placement is scored from two ingredient groups:

* **traffic descriptors** — placement-independent properties of the
  job's communication (per-rank load, message sizes, temporal
  fluctuation, partner spread, the machine-relative offered rate) taken
  from :func:`repro.core.advisor.characterize`, the same measurements
  that drive the paper's rule table;
* **placement/topology statistics** — locality (distinct routers and
  groups touched, group spread, node contiguity) plus *expected link
  load*: each communicating rank pair deposits its bytes onto the links
  of its minimal-route aggregate from
  :class:`~repro.flow.routes.FlowRouteModel`, exactly the expectation
  the flow backend itself uses, and the per-class (local/global) load
  concentration and imbalance are summarised.

Everything is a pure function of ``(config, trace, routing, nodes)``:
no RNG, no wall clock, no dict-iteration-order dependence — the same
inputs produce a **byte-identical** ``float64`` vector in any process
(the determinism suite asserts this), which is what lets cached
surrogate scores and trained models be compared across runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.config import SimulationConfig
from repro.core.advisor import characterize
from repro.core.runner import build_topology
from repro.engine.rng import rng_stream, spawn_seed
from repro.flow.routes import FlowParams, flow_route_model
from repro.mpi.trace import JobTrace
from repro.placement.machine import Machine
from repro.placement.policies import PLACEMENT_NAMES, make_placement
from repro.topology.links import LinkKind

__all__ = [
    "FEATURE_NAMES",
    "NUM_FEATURES",
    "Candidate",
    "FeatureExtractor",
    "enumerate_candidates",
    "mirror_allocation",
]

#: Feature vector layout, in order. The first block is
#: placement-independent (identical for every candidate of one job);
#: the second block depends on the candidate's node set.
FEATURE_NAMES: tuple[str, ...] = (
    # -- traffic descriptors (placement-independent) --
    "log_ranks",
    "log_bytes_per_rank",
    "log_msgs_per_rank",
    "log_mean_msg_bytes",
    "load_fluctuation",
    "partner_fraction",
    "neighborhood_share",
    "log_phases_per_rank",
    "log_intensity",
    "routing_adp",
    # -- placement/topology statistics --
    "router_fraction",
    "group_fraction",
    "group_spread",
    "contiguity",
    "mean_rr_hops",
    "local_load_max",
    "local_load_mean",
    "global_load_max",
    "global_load_mean",
    "rr_load_imbalance",
    # -- routing interactions: placement block × the adp flag, so one
    # model fits *separate* placement slopes per routing (an additive
    # flag could shift predictions between routings but never reorder
    # candidates within one) --
    "adp_x_router_fraction",
    "adp_x_group_fraction",
    "adp_x_group_spread",
    "adp_x_contiguity",
    "adp_x_mean_rr_hops",
    "adp_x_local_load_max",
    "adp_x_local_load_mean",
    "adp_x_global_load_max",
    "adp_x_global_load_mean",
    "adp_x_rr_load_imbalance",
)

NUM_FEATURES = len(FEATURE_NAMES)

#: Index where the placement-dependent block starts.
PLACEMENT_BLOCK = FEATURE_NAMES.index("router_fraction")


@dataclass(frozen=True)
class Candidate:
    """One candidate placement: the policy that drew it plus its nodes."""

    placement: str
    draw: int
    nodes: tuple[int, ...]

    @property
    def label(self) -> str:
        return f"{self.placement}#{self.draw}"


def mirror_allocation(
    machine: Machine, policy_name: str, num_nodes: int, seed: int
) -> list[int]:
    """The exact node list :meth:`Machine.allocate` *would* return.

    Replays the machine's allocation draw (same named RNG stream, same
    sorted free pool) without mutating the free pool — what the
    surrogate scheduler policy uses to score each placement policy's
    allocation before committing to one.
    """
    policy = make_placement(policy_name)
    rng = rng_stream(seed, "placement", policy.name)
    return policy.select(
        machine.params, machine.free_nodes(), num_nodes, rng
    )


def enumerate_candidates(
    config: SimulationConfig,
    num_ranks: int,
    placements: Sequence[str] = PLACEMENT_NAMES,
    per_policy: int = 20,
    seed: int = 0,
) -> list[Candidate]:
    """Draw a deduplicated candidate-placement set on an empty machine.

    Each policy contributes up to ``per_policy`` seeded draws
    (deterministic policies like ``cont`` collapse to one candidate);
    duplicates across draws and policies are removed, first occurrence
    wins, so the list order — policy-major, draw order inside — is
    deterministic.
    """
    machine = Machine(config.topology)
    seen: set[tuple[int, ...]] = set()
    out: list[Candidate] = []
    for name in placements:
        for k in range(per_policy):
            nodes = tuple(
                mirror_allocation(
                    machine, name, num_ranks,
                    spawn_seed(seed, "advise", name, k),
                )
            )
            if nodes not in seen:
                seen.add(nodes)
                out.append(Candidate(name, k, nodes))
    return out


class FeatureExtractor:
    """Featurizer for one (config, trace, routing) job context.

    Construction pays the per-job costs once — trace characterisation,
    the nonzero communication-pair list, the shared minimal route model
    — so :meth:`vector` is cheap enough to rank thousands of candidate
    placements per second (the ``bench_advisor`` gate).
    """

    def __init__(
        self,
        config: SimulationConfig,
        trace: JobTrace,
        routing: str,
        flow_params: FlowParams | None = None,
    ) -> None:
        if routing not in ("min", "adp"):
            raise ValueError(f"unknown routing policy {routing!r}")
        self.config = config
        self.trace = trace
        self.routing = routing
        self.topo = build_topology(config.topology)
        #: Expected-load aggregates always come from the minimal route
        #: model — the uniform-spread expectation both routings start
        #: from; the routing itself enters as the ``routing_adp`` flag
        #: and the surrogate learns the adaptive correction.
        self.model = flow_route_model(
            self.topo, config.network, "min", flow_params
        )
        profile = characterize(trace)
        self.profile = profile
        duration_ns = 1e6 + profile.compute_ns_per_rank
        intensity = (
            profile.bytes_per_rank / duration_ns
        ) / config.network.local_bw

        mat = trace.communication_matrix()
        src, dst = np.nonzero(mat)
        self._src: list[int] = src.tolist()
        self._dst: list[int] = dst.tolist()
        self._pair_bytes: list[float] = mat[src, dst].astype(
            np.float64
        ).tolist()
        self.total_bytes = float(mat.sum())

        kind = self.topo.links.kind
        assert kind is not None, "link table must be frozen"
        self._local_mask = (kind == LinkKind.LOCAL_ROW) | (
            kind == LinkKind.LOCAL_COL
        )
        self._global_mask = kind == LinkKind.GLOBAL
        self._rr_mask = self._local_mask | self._global_mask

        self._base = np.array(
            [
                np.log1p(float(profile.num_ranks)),
                np.log1p(profile.bytes_per_rank),
                np.log1p(profile.messages_per_rank),
                np.log1p(profile.mean_message_bytes),
                profile.load_fluctuation,
                profile.partners_per_rank / max(1, profile.num_ranks),
                profile.neighborhood_share,
                np.log1p(profile.phases_per_rank),
                np.log1p(intensity),
                1.0 if routing == "adp" else 0.0,
            ],
            dtype=np.float64,
        )

    def vector(self, nodes: Sequence[int]) -> np.ndarray:
        """The feature vector of one candidate placement.

        ``nodes[i]`` hosts rank ``i`` — the allocation-order contract of
        :meth:`~repro.placement.machine.Machine.allocate`.
        """
        n = len(nodes)
        if n != self.profile.num_ranks:
            raise ValueError(
                f"placement has {n} nodes but the trace has "
                f"{self.profile.num_ranks} ranks"
            )
        topo = self.topo
        routers = sorted({topo.router_of(node) for node in nodes})
        groups = sorted({topo.group_of_node(node) for node in nodes})
        group_counts: dict[int, int] = {}
        for node in nodes:
            g = topo.group_of_node(node)
            group_counts[g] = group_counts.get(g, 0) + 1
        group_spread = max(group_counts.values()) / n

        ordered = sorted(nodes)
        if n > 1:
            adjacent = sum(
                1 for a, b in zip(ordered, ordered[1:]) if b - a == 1
            )
            contiguity = adjacent / (n - 1)
        else:
            contiguity = 1.0

        loads = np.zeros(topo.num_links, dtype=np.float64)
        hops = 0.0
        model = self.model
        for i, j, size in zip(self._src, self._dst, self._pair_bytes):
            entry = model.entry(nodes[i], nodes[j])
            cols, wgts, _lids = model.entry_arrays(entry)
            loads[cols] += wgts * size
            hops += entry.rr_hops * size

        total = self.total_bytes
        if total > 0.0:
            loads /= total
            mean_rr_hops = hops / total
        else:
            mean_rr_hops = 0.0
        local = loads[self._local_mask]
        glob = loads[self._global_mask]
        rr = loads[self._rr_mask]
        loaded = rr[rr > 0.0]
        imbalance = (
            float(loaded.max() / loaded.mean()) if loaded.size else 0.0
        )

        placed = np.array(
            [
                len(routers) / n,
                len(groups) / topo.params.groups,
                group_spread,
                contiguity,
                mean_rr_hops,
                float(local.max()) if local.size else 0.0,
                float(local.mean()) if local.size else 0.0,
                float(glob.max()) if glob.size else 0.0,
                float(glob.mean()) if glob.size else 0.0,
                imbalance,
            ],
            dtype=np.float64,
        )
        adp = 1.0 if self.routing == "adp" else 0.0
        return np.concatenate([self._base, placed, placed * adp])

    def matrix(self, candidates: Sequence[Candidate]) -> np.ndarray:
        """Stacked feature matrix, one row per candidate, in order."""
        if not candidates:
            return np.empty((0, NUM_FEATURES), dtype=np.float64)
        return np.stack([self.vector(c.nodes) for c in candidates])
