"""Pure-numpy ridge surrogate with versioned JSON save/load.

A fitted model is a linear map over standardized features — exactly the
kind of surrogate SMART (PAPERS.md) shows is enough to *rank* candidate
placements, which is all the funnel's first tier needs: the flow and
packet tiers own absolute accuracy. Ridge (L2) keeps the solve stable
when features are collinear on small training caches (group_fraction
vs. group_spread on a tiny machine, for example).

Serialisation is plain JSON under the ``repro-advisor-model/v1``
schema. Python floats round-trip exactly through ``json``, so a
loaded model's predictions are **byte-identical** to the fitted
model's — asserted by the round-trip test.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.advisor.features import FEATURE_NAMES

__all__ = ["MODEL_SCHEMA", "RidgeSurrogate"]

MODEL_SCHEMA = "repro-advisor-model/v1"

#: What the surrogate predicts: ``log1p`` of the job's median
#: communication time in ns — the same metric the fidelity harness and
#: the funnel's simulation tiers rank by, log-compressed so the ridge
#: loss doesn't let the slowest placements dominate the fit.
TARGET = "log1p_median_comm_time_ns"


@dataclass(frozen=True)
class RidgeSurrogate:
    """A fitted ridge regression: ``predict(x) = w·standardize(x) + b``."""

    feature_names: tuple[str, ...]
    coef: tuple[float, ...]
    intercept: float
    mean: tuple[float, ...]
    scale: tuple[float, ...]
    alpha: float
    n_samples: int
    target: str = TARGET

    @classmethod
    def fit(
        cls,
        features: np.ndarray,
        targets: np.ndarray,
        alpha: float = 1.0,
        feature_names: Sequence[str] = FEATURE_NAMES,
    ) -> "RidgeSurrogate":
        """Fit on a ``(n_samples, n_features)`` matrix.

        Features are standardized (constant columns get scale 1, so
        they contribute nothing and stay harmless at predict time);
        the intercept absorbs the target mean and is not penalised.
        """
        x = np.asarray(features, dtype=np.float64)
        y = np.asarray(targets, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != len(feature_names):
            raise ValueError(
                f"feature matrix must be (n, {len(feature_names)}), "
                f"got {x.shape}"
            )
        if y.shape != (x.shape[0],):
            raise ValueError(
                f"targets must be ({x.shape[0]},), got {y.shape}"
            )
        if x.shape[0] < 2:
            raise ValueError("need at least 2 samples to fit")
        if alpha <= 0.0:
            raise ValueError("alpha must be positive")
        mean = x.mean(axis=0)
        scale = x.std(axis=0)
        scale = np.where(scale > 0.0, scale, 1.0)
        z = (x - mean) / scale
        y0 = y - y.mean()
        k = z.shape[1]
        gram = z.T @ z + alpha * np.eye(k)
        coef = np.linalg.solve(gram, z.T @ y0)
        return cls(
            feature_names=tuple(feature_names),
            coef=tuple(float(c) for c in coef),
            intercept=float(y.mean()),
            mean=tuple(float(m) for m in mean),
            scale=tuple(float(s) for s in scale),
            alpha=float(alpha),
            n_samples=int(x.shape[0]),
        )

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predicted targets for ``(n, k)`` or a single ``(k,)`` row."""
        x = np.asarray(features, dtype=np.float64)
        single = x.ndim == 1
        if single:
            x = x[np.newaxis, :]
        if x.shape[1] != len(self.feature_names):
            raise ValueError(
                f"expected {len(self.feature_names)} features, "
                f"got {x.shape[1]}"
            )
        z = (x - np.asarray(self.mean)) / np.asarray(self.scale)
        out = z @ np.asarray(self.coef) + self.intercept
        return out[0] if single else out

    def score(self, features: np.ndarray, targets: np.ndarray) -> float:
        """Coefficient of determination (R²) on held-out data."""
        y = np.asarray(targets, dtype=np.float64)
        pred = np.asarray(self.predict(features), dtype=np.float64)
        ss_res = float(np.sum((y - pred) ** 2))
        ss_tot = float(np.sum((y - y.mean()) ** 2))
        if ss_tot == 0.0:
            return 1.0 if ss_res == 0.0 else 0.0
        return 1.0 - ss_res / ss_tot

    def to_payload(self) -> dict:
        return {
            "schema": MODEL_SCHEMA,
            "target": self.target,
            "feature_names": list(self.feature_names),
            "coef": list(self.coef),
            "intercept": self.intercept,
            "mean": list(self.mean),
            "scale": list(self.scale),
            "alpha": self.alpha,
            "n_samples": self.n_samples,
        }

    def save(self, path: str | Path) -> None:
        """Write the model as versioned JSON (atomic replace)."""
        out = Path(path)
        tmp = out.with_suffix(out.suffix + ".tmp")
        tmp.write_text(
            json.dumps(self.to_payload(), indent=2, sort_keys=True) + "\n"
        )
        tmp.replace(out)

    @classmethod
    def from_payload(cls, payload: dict) -> "RidgeSurrogate":
        schema = payload.get("schema")
        if schema != MODEL_SCHEMA:
            raise ValueError(
                f"unsupported model schema {schema!r} "
                f"(expected {MODEL_SCHEMA!r})"
            )
        names = tuple(payload["feature_names"])
        if names != tuple(FEATURE_NAMES):
            raise ValueError(
                "model feature layout does not match this code version: "
                f"{names} != {FEATURE_NAMES}"
            )
        return cls(
            feature_names=names,
            coef=tuple(float(c) for c in payload["coef"]),
            intercept=float(payload["intercept"]),
            mean=tuple(float(m) for m in payload["mean"]),
            scale=tuple(float(s) for s in payload["scale"]),
            alpha=float(payload["alpha"]),
            n_samples=int(payload["n_samples"]),
            target=str(payload.get("target", TARGET)),
        )

    @classmethod
    def load(cls, path: str | Path) -> "RidgeSurrogate":
        return cls.from_payload(json.loads(Path(path).read_text()))
