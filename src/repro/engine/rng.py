"""Deterministic random-number streams.

Every stochastic component (placement shuffles, adaptive-route sampling,
background-traffic destinations, message-size jitter) draws from its own
named stream derived from the experiment seed, so that changing one
component's consumption pattern never perturbs another's — a standard
reproducibility idiom for parallel simulations.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["spawn_seed", "rng_stream"]


def spawn_seed(seed: int, *key: object) -> int:
    """Derive a child seed from ``seed`` and a hashable key path.

    Uses CRC32 over the textual key (stable across processes and Python
    versions, unlike ``hash()``).
    """
    text = "/".join(str(k) for k in key)
    return (seed * 0x9E3779B1 + zlib.crc32(text.encode())) % (2**63)


def rng_stream(seed: int, *key: object) -> np.random.Generator:
    """A :class:`numpy.random.Generator` for the named component."""
    return np.random.default_rng(np.random.SeedSequence(spawn_seed(seed, *key)))
