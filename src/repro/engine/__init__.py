"""Sequential discrete-event simulation core.

A deliberately small engine: a binary-heap calendar of ``(time, seq,
callback, args)`` entries. The paper used CODES/ROSS (a parallel DES in
C); a sequential engine produces identical simulated results for a given
seed, trading only wall-clock time (see DESIGN.md substitutions).
"""

from repro.engine.queues import (
    SCHEDULER_NAMES,
    CalendarQueue,
    EventQueue,
    HeapQueue,
    make_queue,
)
from repro.engine.simulator import Simulator
from repro.engine.rng import rng_stream, spawn_seed

__all__ = [
    "Simulator",
    "rng_stream",
    "spawn_seed",
    "SCHEDULER_NAMES",
    "EventQueue",
    "HeapQueue",
    "CalendarQueue",
    "make_queue",
]
