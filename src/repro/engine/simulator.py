"""The event calendar.

Hot-path notes (per the HPC-Python guides: profile first, keep the inner
loop allocation-light): events are plain tuples in a pluggable
:class:`~repro.engine.queues.EventQueue`; the monotonically increasing
sequence number both breaks time ties deterministically and avoids ever
comparing callbacks. Because ``(time, seq)`` is a *total* order, every
correct queue implementation pops the same push sequence in the same
order — the scheduler choice is a pure performance knob.
"""

from __future__ import annotations

import heapq
import sys
from typing import Any, Callable

from repro.engine.queues import HeapQueue, make_queue

__all__ = ["Simulator"]


class Simulator:
    """A sequential discrete-event simulator with a pluggable calendar.

    ``scheduler`` selects the event-queue implementation (``"heap"`` —
    the default binary heap — or ``"calendar"``, a bucketed calendar
    queue); results are bit-identical under either.
    """

    __slots__ = (
        "now",
        "scheduler",
        "_queue",
        "_push",
        "_seq",
        "_events_run",
        "_heartbeats",
        "_hb_next",
    )

    def __init__(self, scheduler: str = "heap") -> None:
        self.now: float = 0.0
        self.scheduler: str = scheduler
        self._queue = make_queue(scheduler)
        self._push = self._queue.push  # pre-bound: at() is hot
        self._seq: int = 0
        self._events_run: int = 0
        # Heartbeats: [next_fire_time, interval, fn] triples, fired at
        # exact multiples of their interval *between* events, outside the
        # calendar (they never count toward events_run or max_events).
        self._heartbeats: list[list] = []
        self._hb_next: float = float("inf")

    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> None:
        """Run ``fn(*args)`` at ``now + delay``."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        self.at(self.now + delay, fn, *args)

    def at(self, time: float, fn: Callable[..., None], *args: Any) -> None:
        """Run ``fn(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule at {time} before current time {self.now}"
            )
        self._push((time, self._seq, fn, args))
        self._seq += 1

    def reserve_seq(self) -> int:
        """Claim the next tie-break sequence number without scheduling.

        Lets a caller pre-allocate an event's slot in the ``(time, seq)``
        total order and materialise it later — or never — via
        :meth:`at_reserved`. The event then fires exactly where it would
        have had it been pushed at reservation time, so deferring (or
        eliding) a push cannot perturb same-time tie-breaks of any other
        event. This is how the fabric skips completion-kick events on
        idle links while staying bit-identical to the eager schedule.
        """
        seq = self._seq
        self._seq += 1
        return seq

    def at_reserved(
        self, time: float, seq: int, fn: Callable[..., None], *args: Any
    ) -> None:
        """Schedule ``fn(*args)`` at ``time`` under a reserved sequence number."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule at {time} before current time {self.now}"
            )
        self._push((time, seq, fn, args))

    def add_heartbeat(
        self,
        interval: float,
        fn: Callable[[float], None],
        start: float | None = None,
    ) -> None:
        """Call ``fn(t)`` at ``t = start, start+interval, ...`` during :meth:`run`.

        Heartbeats are the periodic-sampling hook used by the
        observability layer: they fire at exact times regardless of
        event density, *before* any event scheduled at the same or a
        later time, in registration order on ties. They live outside the
        event calendar — no heap traffic, no ``events_run`` increments —
        so a run with no heartbeats registered is bit-identical to one
        on a simulator that predates them. Firing stops when the run
        stops; pending heartbeat times simply remain due.
        """
        if interval <= 0:
            raise ValueError(f"heartbeat interval must be positive (got {interval})")
        first = self.now + interval if start is None else start
        if first < self.now:
            raise ValueError(
                f"heartbeat cannot start at {first} before current time {self.now}"
            )
        self._heartbeats.append([first, interval, fn])
        if first < self._hb_next:
            self._hb_next = first

    def _fire_heartbeats(self, limit: float) -> None:
        """Fire every heartbeat due at or before ``limit``, in time order.

        ``_hb_next`` (maintained incrementally) is the loop variable, so
        each firing round does a single pass over the heartbeat list
        instead of two ``min()`` scans per fired time.
        """
        hb = self._heartbeats
        while len(hb) == 1:
            # Overwhelmingly the common case (one obs recorder): no
            # scans at all, just walk the single triple forward. Re-read
            # the list each round in case the callback registers more.
            e = hb[0]
            t = e[0]
            if t > limit:
                self._hb_next = t
                return
            self.now = t
            e[2](t)
            e[0] = t + e[1]
        # General case: one pass per distinct due time, firing in
        # registration order on ties and folding the next-due scan into
        # the same pass (the old code did two min() scans per round).
        t = self._hb_next
        while t <= limit:
            nxt = float("inf")
            for e in hb:
                if e[0] == t:
                    self.now = t
                    e[2](t)
                    e[0] = t + e[1]
                if e[0] < nxt:
                    nxt = e[0]
            t = nxt
        self._hb_next = t

    def run(
        self,
        until: float | None = None,
        stop: Callable[[], bool] | None = None,
        max_events: int | None = None,
    ) -> float:
        """Drain the calendar; return the final simulated time.

        ``until`` bounds simulated time (events beyond it stay queued),
        ``stop`` is polled after every event, and ``max_events`` guards
        against runaway simulations.
        """
        queue = self._queue
        if type(queue) is HeapQueue:
            if until is None:
                return self._run_heap_fast(
                    queue.heap,
                    stop,
                    sys.maxsize if max_events is None else max_events,
                )
            return self._run_heap(queue.heap, until, stop, max_events)
        return self._run_generic(queue, until, stop, max_events)

    def _run_heap_fast(
        self, queue: list, stop: Callable[[], bool] | None, max_events: int
    ) -> float:
        """Heap loop without the ``until`` horizon — the production shape
        (drain-or-stop with a runaway guard).

        ``max_events`` arrives as a plain int (``sys.maxsize`` when the
        caller passed ``None``), so the guard is a single integer
        comparison instead of the generic loop's per-event ``is not
        None`` tests — measurable at hundreds of thousands of events per
        run.
        """
        pop = heapq.heappop
        push = heapq.heappush
        heartbeats = self._heartbeats
        events_run = self._events_run
        try:
            while queue:
                ev = pop(queue)
                time = ev[0]
                if heartbeats and self._hb_next <= time:
                    push(queue, ev)
                    self._fire_heartbeats(time)
                    continue  # a heartbeat may have scheduled new events
                self.now = time
                ev[2](*ev[3])
                events_run += 1
                if stop is not None and stop():
                    break
                if events_run >= max_events:
                    raise RuntimeError(
                        f"simulation exceeded {max_events} events; "
                        "likely runaway traffic generation"
                    )
        finally:
            self._events_run = events_run
        return self.now

    def _run_heap(
        self,
        queue: list,
        until: float | None,
        stop: Callable[[], bool] | None,
        max_events: int | None,
    ) -> float:
        """Heap fast path: pop eagerly, push back on the rare deferral.

        Deferral (a due heartbeat or the ``until`` horizon) pushes the
        popped event back unchanged — its ``(time, seq)`` key is intact,
        so it re-pops first among the still-queued events. This trades a
        per-deferral push for never paying the peek-then-pop double
        access on the hot path. ``events_run`` is kept in a local and
        written back in ``finally`` so an exception mid-event leaves the
        public count exact.
        """
        pop = heapq.heappop
        push = heapq.heappush
        heartbeats = self._heartbeats
        events_run = self._events_run
        try:
            while queue:
                ev = pop(queue)
                time = ev[0]
                if until is not None and time > until:
                    push(queue, ev)
                    if heartbeats and self._hb_next <= until:
                        self._fire_heartbeats(until)
                    self.now = until
                    break
                if heartbeats and self._hb_next <= time:
                    push(queue, ev)
                    self._fire_heartbeats(time)
                    continue  # a heartbeat may have scheduled new events
                self.now = time
                ev[2](*ev[3])
                events_run += 1
                if stop is not None and stop():
                    break
                if max_events is not None and events_run >= max_events:
                    raise RuntimeError(
                        f"simulation exceeded {max_events} events; "
                        "likely runaway traffic generation"
                    )
        finally:
            self._events_run = events_run
        return self.now

    def _run_generic(
        self,
        queue,
        until: float | None,
        stop: Callable[[], bool] | None,
        max_events: int | None,
    ) -> float:
        """Protocol path: pop eagerly, push back on deferral.

        Pushing an event back is order-safe because its ``(time, seq)``
        key is unchanged — it re-pops first among the still-queued.
        """
        pop, push = queue.pop, queue.push
        heartbeats = self._heartbeats
        events_run = self._events_run
        try:
            while queue:
                ev = pop()
                time = ev[0]
                if until is not None and time > until:
                    push(ev)
                    if heartbeats and self._hb_next <= until:
                        self._fire_heartbeats(until)
                    self.now = until
                    break
                if heartbeats and self._hb_next <= time:
                    push(ev)
                    self._fire_heartbeats(time)
                    continue  # a heartbeat may have scheduled new events
                self.now = time
                ev[2](*ev[3])
                events_run += 1
                if stop is not None and stop():
                    break
                if max_events is not None and events_run >= max_events:
                    raise RuntimeError(
                        f"simulation exceeded {max_events} events; "
                        "likely runaway traffic generation"
                    )
        finally:
            self._events_run = events_run
        return self.now

    @property
    def events_run(self) -> int:
        """Number of events executed so far (for profiling/tests)."""
        return self._events_run

    @property
    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue)
