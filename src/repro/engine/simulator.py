"""The event calendar.

Hot-path notes (per the HPC-Python guides: profile first, keep the inner
loop allocation-light): events are plain tuples in a ``heapq``; the
monotonically increasing sequence number both breaks time ties
deterministically and avoids ever comparing callbacks.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

__all__ = ["Simulator"]


class Simulator:
    """A sequential discrete-event simulator with a heap calendar."""

    __slots__ = ("now", "_queue", "_seq", "_events_run")

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: list[tuple[float, int, Callable[..., None], tuple[Any, ...]]] = []
        self._seq: int = 0
        self._events_run: int = 0

    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> None:
        """Run ``fn(*args)`` at ``now + delay``."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        self.at(self.now + delay, fn, *args)

    def at(self, time: float, fn: Callable[..., None], *args: Any) -> None:
        """Run ``fn(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule at {time} before current time {self.now}"
            )
        heapq.heappush(self._queue, (time, self._seq, fn, args))
        self._seq += 1

    def run(
        self,
        until: float | None = None,
        stop: Callable[[], bool] | None = None,
        max_events: int | None = None,
    ) -> float:
        """Drain the calendar; return the final simulated time.

        ``until`` bounds simulated time (events beyond it stay queued),
        ``stop`` is polled after every event, and ``max_events`` guards
        against runaway simulations.
        """
        queue = self._queue
        pop = heapq.heappop
        while queue:
            time, _, fn, args = queue[0]
            if until is not None and time > until:
                self.now = until
                break
            pop(queue)
            self.now = time
            fn(*args)
            self._events_run += 1
            if stop is not None and stop():
                break
            if max_events is not None and self._events_run >= max_events:
                raise RuntimeError(
                    f"simulation exceeded {max_events} events; "
                    "likely runaway traffic generation"
                )
        return self.now

    @property
    def events_run(self) -> int:
        """Number of events executed so far (for profiling/tests)."""
        return self._events_run

    @property
    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue)
