"""The event calendar.

Hot-path notes (per the HPC-Python guides: profile first, keep the inner
loop allocation-light): events are plain tuples in a ``heapq``; the
monotonically increasing sequence number both breaks time ties
deterministically and avoids ever comparing callbacks.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

__all__ = ["Simulator"]


class Simulator:
    """A sequential discrete-event simulator with a heap calendar."""

    __slots__ = ("now", "_queue", "_seq", "_events_run", "_heartbeats", "_hb_next")

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: list[tuple[float, int, Callable[..., None], tuple[Any, ...]]] = []
        self._seq: int = 0
        self._events_run: int = 0
        # Heartbeats: [next_fire_time, interval, fn] triples, fired at
        # exact multiples of their interval *between* events, outside the
        # calendar (they never count toward events_run or max_events).
        self._heartbeats: list[list] = []
        self._hb_next: float = float("inf")

    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> None:
        """Run ``fn(*args)`` at ``now + delay``."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        self.at(self.now + delay, fn, *args)

    def at(self, time: float, fn: Callable[..., None], *args: Any) -> None:
        """Run ``fn(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule at {time} before current time {self.now}"
            )
        heapq.heappush(self._queue, (time, self._seq, fn, args))
        self._seq += 1

    def add_heartbeat(
        self,
        interval: float,
        fn: Callable[[float], None],
        start: float | None = None,
    ) -> None:
        """Call ``fn(t)`` at ``t = start, start+interval, ...`` during :meth:`run`.

        Heartbeats are the periodic-sampling hook used by the
        observability layer: they fire at exact times regardless of
        event density, *before* any event scheduled at the same or a
        later time, in registration order on ties. They live outside the
        event calendar — no heap traffic, no ``events_run`` increments —
        so a run with no heartbeats registered is bit-identical to one
        on a simulator that predates them. Firing stops when the run
        stops; pending heartbeat times simply remain due.
        """
        if interval <= 0:
            raise ValueError(f"heartbeat interval must be positive (got {interval})")
        first = self.now + interval if start is None else start
        if first < self.now:
            raise ValueError(
                f"heartbeat cannot start at {first} before current time {self.now}"
            )
        self._heartbeats.append([first, interval, fn])
        if first < self._hb_next:
            self._hb_next = first

    def _fire_heartbeats(self, limit: float) -> None:
        """Fire every heartbeat due at or before ``limit``, in time order."""
        hb = self._heartbeats
        while True:
            t = min(e[0] for e in hb)
            if t > limit:
                break
            for e in hb:
                if e[0] == t:
                    self.now = t
                    e[2](t)
                    e[0] = t + e[1]
        self._hb_next = min(e[0] for e in hb)

    def run(
        self,
        until: float | None = None,
        stop: Callable[[], bool] | None = None,
        max_events: int | None = None,
    ) -> float:
        """Drain the calendar; return the final simulated time.

        ``until`` bounds simulated time (events beyond it stay queued),
        ``stop`` is polled after every event, and ``max_events`` guards
        against runaway simulations.
        """
        queue = self._queue
        pop = heapq.heappop
        heartbeats = self._heartbeats
        while queue:
            time, _, fn, args = queue[0]
            if until is not None and time > until:
                if heartbeats and self._hb_next <= until:
                    self._fire_heartbeats(until)
                self.now = until
                break
            if heartbeats and self._hb_next <= time:
                self._fire_heartbeats(time)
                continue  # a heartbeat may have scheduled new events
            pop(queue)
            self.now = time
            fn(*args)
            self._events_run += 1
            if stop is not None and stop():
                break
            if max_events is not None and self._events_run >= max_events:
                raise RuntimeError(
                    f"simulation exceeded {max_events} events; "
                    "likely runaway traffic generation"
                )
        return self.now

    @property
    def events_run(self) -> int:
        """Number of events executed so far (for profiling/tests)."""
        return self._events_run

    @property
    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue)
