"""Pluggable event calendars for the simulator (the ``EventQueue`` protocol).

Entries are ``(time, seq, callback, args)`` tuples ordered by
``(time, seq)``. ``seq`` is unique per simulator, so tuple comparison
never reaches the callback and the pop order is a *total* order: every
correct :class:`EventQueue` implementation drains an identical push
sequence in exactly the same order. That is what makes the scheduler a
pure performance knob — results are bit-identical under any of them
(enforced by ``tests/integration/test_scheduler_determinism.py``).

Implementations:

* :class:`HeapQueue` — the baseline binary heap (C-accelerated
  ``heapq``); O(log n) push/pop, excellent constants, the default.
* :class:`CalendarQueue` — a classic Brown calendar queue: events hash
  into time-bucketed mini-heaps of width ``w``; pop scans the current
  "year" of buckets in time order. With the lazy resize keeping
  ~O(1) events per bucket, push and pop are amortised O(1), which wins
  for the very large, high-churn event populations of big sweeps.
"""

from __future__ import annotations

from functools import partial
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Protocol, runtime_checkable

__all__ = [
    "SCHEDULER_NAMES",
    "Event",
    "EventQueue",
    "HeapQueue",
    "CalendarQueue",
    "make_queue",
]

#: One calendar entry: (absolute time, tie-break sequence, callback, args).
Event = "tuple[float, int, Callable[..., None], tuple[Any, ...]]"


@runtime_checkable
class EventQueue(Protocol):
    """Minimal priority-queue contract the simulator's run loop needs."""

    def push(self, ev: tuple) -> None:  # pragma: no cover - protocol
        ...

    def pop(self) -> tuple:  # pragma: no cover - protocol
        ...

    def __len__(self) -> int:  # pragma: no cover - protocol
        ...


class HeapQueue:
    """Binary-heap calendar (the historical engine, unchanged semantics).

    ``push``/``pop`` are bound ``functools.partial`` objects over the C
    ``heapq`` functions, so the per-event cost is a C-level call with no
    Python frame. The simulator's run loop additionally special-cases
    this class to peek ``heap[0]`` directly.
    """

    __slots__ = ("heap", "push", "pop")

    def __init__(self) -> None:
        self.heap: list = []
        self.push = partial(heappush, self.heap)
        self.pop = partial(heappop, self.heap)

    def __len__(self) -> int:
        return len(self.heap)


class CalendarQueue:
    """Bucketed calendar queue with lazy resize.

    Events land in bucket ``int(t / width) % nbuckets`` (a mini-heap);
    :meth:`pop` scans buckets from the current position, taking an event
    only when it is due within the bucket's current year window
    ``[vb * width, (vb + 1) * width)``. If a whole year turns up nothing
    (sparse far-future populations), pop falls back to a direct scan of
    all bucket heads and jumps the position there.

    The resize is *lazy*: nothing rebalances per-operation; when the
    population crosses 2x the bucket count the directory doubles (and
    halves below 0.5x), re-estimating the width from the live events'
    time span so occupancy stays ~O(1) per bucket.
    """

    __slots__ = ("_buckets", "_n", "_width", "_size", "_vb", "_pos_t", "_min_n")

    def __init__(
        self,
        bucket_count: int = 16,
        bucket_width: float = 4096.0,
        min_bucket_count: int = 16,
    ) -> None:
        if bucket_count < 2:
            raise ValueError("need at least two buckets")
        if bucket_width <= 0:
            raise ValueError("bucket width must be positive")
        self._n = bucket_count
        self._width = float(bucket_width)
        self._min_n = min(min_bucket_count, bucket_count)
        self._buckets: list[list] = [[] for _ in range(bucket_count)]
        self._size = 0
        self._pos_t = 0.0  # time of the last popped event (dequeue position)
        self._vb = 0  # virtual bucket index: int(_pos_t / _width)

    def __len__(self) -> int:
        return self._size

    def push(self, ev: tuple) -> None:
        heappush(self._buckets[int(ev[0] / self._width) % self._n], ev)
        self._size += 1
        if self._size > 2 * self._n:
            self._resize(2 * self._n)

    def pop(self) -> tuple:
        if not self._size:
            raise IndexError("pop from an empty CalendarQueue")
        buckets, n, w = self._buckets, self._n, self._width
        vb = self._vb
        for _ in range(n):
            b = buckets[vb % n]
            # Due within this bucket's current year window?
            if b and b[0][0] < (vb + 1) * w:
                ev = heappop(b)
                self._vb = vb
                return self._took(ev)
            vb += 1
        # Sparse year: the next event is at least a full year ahead.
        # Take the globally minimal bucket head directly and jump there.
        best = None
        best_i = -1
        for i, b in enumerate(buckets):
            if b and (best is None or b[0] < best):
                best = b[0]
                best_i = i
        ev = heappop(buckets[best_i])
        self._vb = int(ev[0] / w)
        return self._took(ev)

    def _took(self, ev: tuple) -> tuple:
        self._pos_t = ev[0]
        self._size -= 1
        if self._size < self._n // 2 and self._n > self._min_n:
            self._resize(self._n // 2)
        return ev

    def _resize(self, new_n: int) -> None:
        """Lazy resize: rebuild the bucket directory at a new size/width."""
        events = [ev for b in self._buckets for ev in b]
        n = max(new_n, self._min_n)
        if len(events) >= 2:
            t_lo = min(ev[0] for ev in events)
            t_hi = max(ev[0] for ev in events)
            span = t_hi - t_lo
            if span > 0.0:
                # ~3 events per bucket-width on average (Brown's rule of
                # thumb keeps both the insert search and the year scan
                # short); floor keeps degenerate spans usable.
                self._width = max(3.0 * span / len(events), 1e-9)
        self._n = n
        w = self._width
        buckets: list[list] = [[] for _ in range(n)]
        for ev in events:
            buckets[int(ev[0] / w) % n].append(ev)
        for b in buckets:
            heapify(b)
        self._buckets = buckets
        self._vb = int(self._pos_t / w)


#: Scheduler registry: name -> zero-arg factory.
_SCHEDULERS: dict[str, Callable[[], Any]] = {
    "heap": HeapQueue,
    "calendar": CalendarQueue,
}

SCHEDULER_NAMES: tuple[str, ...] = tuple(sorted(_SCHEDULERS))


def make_queue(name: str):
    """Instantiate the named event queue (``heap`` or ``calendar``)."""
    try:
        factory = _SCHEDULERS[name]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; known: {list(SCHEDULER_NAMES)}"
        ) from None
    return factory()
