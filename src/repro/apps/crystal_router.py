"""Crystal Router (CR) trace generator.

The crystal router mini-app is the extracted communication kernel of
Nek5000 (paper Section III-A): a scalable multistage many-to-many
exchange — structurally a hypercube butterfly — in which "a substantial
portion of the communication occurs in small neighborhoods of MPI
ranks", with a relatively constant per-rank message load of ~190 KB.

The generator reproduces exactly that structure: per iteration, a
neighbourhood phase (ring neighbours within ``neighbor_radius``) carrying
``neighbor_share`` of the load, followed by the log2(N) butterfly stages
carrying the rest. Sizes get a small deterministic per-pair jitter so the
load is "relatively constant" rather than perfectly flat.
"""

from __future__ import annotations

import math

from repro.apps.patterns import pair_jitter
from repro.mpi.trace import JobTrace, RankTrace

__all__ = ["crystal_router_trace"]


def crystal_router_trace(
    num_ranks: int,
    iterations: int = 2,
    load_per_rank: int = 190_000,
    neighbor_share: float = 0.5,
    neighbor_radius: int = 2,
    seed: int = 0,
) -> JobTrace:
    """Build the CR job trace.

    ``load_per_rank`` is the target bytes each rank sends per iteration
    (the paper's "message load per rank", ~190 KB for CR).
    """
    if num_ranks < 2:
        raise ValueError("CR needs at least 2 ranks")
    if not 0.0 <= neighbor_share <= 1.0:
        raise ValueError("neighbor_share must be in [0, 1]")
    if neighbor_radius < 1:
        raise ValueError("neighbor_radius must be >= 1")

    num_stages = max(1, math.ceil(math.log2(num_ranks)))
    neighbors_per_rank = min(2 * neighbor_radius, num_ranks - 1)
    neighbor_bytes = max(
        1, round(load_per_rank * neighbor_share / neighbors_per_rank)
    )
    stage_bytes = max(
        1, round(load_per_rank * (1.0 - neighbor_share) / num_stages)
    )

    ranks = [RankTrace(r) for r in range(num_ranks)]
    profile: list[tuple[str, float]] = []

    for it in range(iterations):
        # Neighbourhood phase: ring neighbours within the radius.
        for rt in ranks:
            me = rt.rank
            req = 0
            for d in range(1, neighbor_radius + 1):
                for peer in {(me + d) % num_ranks, (me - d) % num_ranks}:
                    if peer == me:
                        continue
                    size = round(
                        neighbor_bytes
                        * pair_jitter(seed, "cr-nbr", it, min(me, peer), max(me, peer))
                    )
                    tag = _tag(it, phase=0, stage=d)
                    rt.irecv(peer, size, tag, req=req)
                    rt.isend(peer, size, tag, req=req + 1)
                    req += 2
            rt.waitall()
        profile.append((f"iter{it}/neighborhood", neighbors_per_rank * neighbor_bytes))

        # Butterfly stages: partner = rank XOR 2^s (skipped if out of range).
        for s in range(num_stages):
            bit = 1 << s
            for rt in ranks:
                me = rt.rank
                peer = me ^ bit
                if peer >= num_ranks:
                    continue
                size = round(
                    stage_bytes
                    * pair_jitter(seed, "cr-stage", it, s, min(me, peer), max(me, peer))
                )
                tag = _tag(it, phase=1, stage=s)
                rt.irecv(peer, size, tag, req=0)
                rt.isend(peer, size, tag, req=1)
                rt.waitall()
            profile.append((f"iter{it}/stage{s}", stage_bytes))

        for rt in ranks:
            rt.barrier()

    return JobTrace(
        "CR",
        ranks,
        meta={
            "app": "crystal-router",
            "iterations": iterations,
            "load_per_rank": load_per_rank,
            "phase_profile": profile,
            "seed": seed,
        },
    )


def _tag(iteration: int, phase: int, stage: int) -> int:
    """Unique tag per (iteration, phase, stage) so phases cannot cross-match."""
    return (iteration * 2 + phase) * 64 + stage
