"""Application workloads (paper Section III-A) and background traffic.

Synthetic trace generators reproducing the published communication
characteristics of the three DOE Design Forward mini-apps:

* :func:`crystal_router_trace` — CR: many-to-many multistage exchange
  with a substantial neighbourhood share and a steady ~190 KB/rank load;
* :func:`fill_boundary_trace` — FB: 3D block-decomposition halo exchange
  plus sparse many-to-many, strongly fluctuating 100 KB–2560 KB loads;
* :func:`amg_trace` — AMG: regional (≤6 neighbour) communication with
  per-level decreasing sizes in three short surges, ≤75 KB peak.

Plus the two synthetic background-traffic generators of Section IV-C
(:class:`UniformRandomTraffic` and :class:`BurstyTraffic`) and — via
:mod:`repro.mlcomms.generators` — the DL training family (``DP``,
``PP``, ``TP``, ``MOE``), registered here so every driver treats
training jobs as ordinary applications.
"""

from repro.apps.crystal_router import crystal_router_trace
from repro.apps.fill_boundary import fill_boundary_trace
from repro.apps.amg import amg_trace
from repro.apps.synthetic import BurstyTraffic, UniformRandomTraffic
from repro.apps.synthetic_patterns import (
    alltoall_trace,
    stencil3d_trace,
    transpose_trace,
    uniform_traffic_trace,
)
from repro.apps.patterns import grid_dims_3d, neighbors_3d, pair_jitter

# Leaf-module import only: pulling in the repro.mlcomms package here
# would cycle back through repro.core while repro.apps is still loading.
from repro.mlcomms.generators import (
    dp_allreduce_trace,
    moe_alltoall_trace,
    pp_1f1b_trace,
    tp_layer_trace,
)

__all__ = [
    "crystal_router_trace",
    "fill_boundary_trace",
    "amg_trace",
    "UniformRandomTraffic",
    "BurstyTraffic",
    "uniform_traffic_trace",
    "stencil3d_trace",
    "transpose_trace",
    "alltoall_trace",
    "dp_allreduce_trace",
    "pp_1f1b_trace",
    "tp_layer_trace",
    "moe_alltoall_trace",
    "grid_dims_3d",
    "neighbors_3d",
    "pair_jitter",
    "APP_BUILDERS",
]

#: Registry used by the CLI and the experiment drivers.
APP_BUILDERS = {
    "CR": crystal_router_trace,
    "FB": fill_boundary_trace,
    "AMG": amg_trace,
    "UNIFORM": uniform_traffic_trace,
    "ST3D": stencil3d_trace,
    "TRANSPOSE": transpose_trace,
    "A2A": alltoall_trace,
    "DP": dp_allreduce_trace,
    "PP": pp_1f1b_trace,
    "TP": tp_layer_trace,
    "MOE": moe_alltoall_trace,
}
