"""Shared communication-pattern helpers for the app generators."""

from __future__ import annotations

import zlib

__all__ = [
    "grid_dims_3d",
    "coord_3d",
    "rank_3d",
    "neighbors_3d",
    "pair_jitter",
]


def grid_dims_3d(n: int) -> tuple[int, int, int]:
    """Near-cubic factorisation ``px * py * pz == n`` with px >= py >= pz.

    Minimises the surface-to-volume ratio of the decomposition, matching
    how BoxLib/BoomerAMG-style codes pick process grids.
    """
    if n < 1:
        raise ValueError("need a positive rank count")
    best = (n, 1, 1)
    best_score = _surface(best)
    px = 1
    while px * px * px <= n:
        if n % px == 0:
            rem = n // px
            py = px
            while py * py <= rem:
                if rem % py == 0:
                    dims = tuple(sorted((px, py, rem // py), reverse=True))
                    score = _surface(dims)
                    if score < best_score:
                        best, best_score = dims, score
                py += 1
        px += 1
    return best  # type: ignore[return-value]


def _surface(dims: tuple[int, int, int]) -> int:
    a, b, c = dims
    return a * b + b * c + a * c


def coord_3d(rank: int, dims: tuple[int, int, int]) -> tuple[int, int, int]:
    """Rank -> (x, y, z) in an x-fastest layout."""
    px, py, _ = dims
    x = rank % px
    y = (rank // px) % py
    z = rank // (px * py)
    return x, y, z


def rank_3d(coord: tuple[int, int, int], dims: tuple[int, int, int]) -> int:
    """(x, y, z) -> rank in an x-fastest layout."""
    px, py, _ = dims
    x, y, z = coord
    return x + px * (y + py * z)


def neighbors_3d(
    rank: int,
    dims: tuple[int, int, int],
    periodic: bool,
    stride: int = 1,
) -> list[int]:
    """Face neighbours at ``stride`` steps in a 3D decomposition.

    ``periodic=True`` wraps (FB's periodic domain boundaries);
    ``periodic=False`` drops out-of-range neighbours (AMG's "up to six
    neighbors, depending on rank boundaries"). Result is sorted and
    deduplicated (wrapping can make both directions coincide).
    """
    coords = coord_3d(rank, dims)
    out: set[int] = set()
    for axis in range(3):
        extent = dims[axis]
        for delta in (-stride, stride):
            pos = coords[axis] + delta
            if periodic:
                pos %= extent
            elif not 0 <= pos < extent:
                continue
            neighbor = list(coords)
            neighbor[axis] = pos
            peer = rank_3d(tuple(neighbor), dims)
            if peer != rank:
                out.add(peer)
    return sorted(out)


def pair_jitter(seed: int, *key: object, lo: float = 0.9, hi: float = 1.1) -> float:
    """Deterministic multiplicative jitter shared by both endpoints.

    Message sizes on the two sides of an exchange must agree, so the
    jitter is derived from the (order-independent) key rather than from
    per-rank RNG streams. CRC32-based: stable across runs and platforms.
    """
    text = "/".join(str(k) for k in key)
    u = zlib.crc32(f"{seed}:{text}".encode()) / 0xFFFFFFFF
    return lo + (hi - lo) * u
