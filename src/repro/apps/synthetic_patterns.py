"""Classic synthetic application patterns as replayable job traces.

The dragonfly literature the paper builds on (Jain et al., Prisacari et
al., the authors' own prior study) evaluates placement/routing with
canonical synthetic patterns. These generators produce the same
patterns as *jobs* (balanced traces with real matching semantics), so
they compose with every driver in :mod:`repro.core` — unlike the
fire-and-forget background injectors in :mod:`repro.apps.synthetic`.

* :func:`uniform_traffic_trace` — each rank sends to uniformly random
  peers (via per-round random perfect matchings, so the trace stays
  balanced); the classic benign-for-minimal, adversarial-for-local
  pattern.
* :func:`stencil3d_trace` — pure 3D nearest-neighbour halo (FB without
  its many-to-many phase); maximal locality.
* :func:`transpose_trace` — rank i sends to (i + N/2) mod N; the
  classic adversarial pattern for minimal routing on dragonflies (all
  traffic crosses the bisection).
* :func:`alltoall_trace` — dense pairwise exchange (e.g. FFT phases).
"""

from __future__ import annotations

from repro.apps.patterns import grid_dims_3d, neighbors_3d, pair_jitter
from repro.engine.rng import rng_stream
from repro.mpi import collectives
from repro.mpi.trace import JobTrace, RankTrace

__all__ = [
    "uniform_traffic_trace",
    "stencil3d_trace",
    "transpose_trace",
    "alltoall_trace",
]


def uniform_traffic_trace(
    num_ranks: int,
    rounds: int = 8,
    message_bytes: int = 65_536,
    seed: int = 0,
) -> JobTrace:
    """Uniform random traffic via random perfect matchings per round."""
    if num_ranks < 2:
        raise ValueError("need at least 2 ranks")
    if rounds < 1:
        raise ValueError("need at least one round")
    ranks = [RankTrace(r) for r in range(num_ranks)]
    rng = rng_stream(seed, "uniform-app")
    profile = []
    for rnd in range(rounds):
        perm = rng.permutation(num_ranks)
        for i in range(0, num_ranks - 1, 2):
            a, b = int(perm[i]), int(perm[i + 1])
            size = round(
                message_bytes * pair_jitter(seed, "uni", rnd, min(a, b), max(a, b))
            )
            for me, peer in ((a, b), (b, a)):
                ranks[me].irecv(peer, size, tag=rnd, req=0)
                ranks[me].isend(peer, size, tag=rnd, req=1)
        for rt in ranks:
            rt.waitall()
        profile.append((f"round{rnd}", float(message_bytes)))
    return JobTrace(
        "UNIFORM",
        ranks,
        meta={"app": "uniform-traffic", "phase_profile": profile, "seed": seed},
    )


def stencil3d_trace(
    num_ranks: int,
    steps: int = 4,
    halo_bytes: int = 131_072,
    periodic: bool = True,
    seed: int = 0,
) -> JobTrace:
    """Pure 3D halo exchange (6 face neighbours per step)."""
    if num_ranks < 2:
        raise ValueError("need at least 2 ranks")
    dims = grid_dims_3d(num_ranks)
    ranks = [RankTrace(r) for r in range(num_ranks)]
    neighbor_lists = [
        neighbors_3d(r, dims, periodic=periodic) for r in range(num_ranks)
    ]
    for step in range(steps):
        for rt in ranks:
            req = 0
            for peer in neighbor_lists[rt.rank]:
                size = round(
                    halo_bytes
                    * pair_jitter(
                        seed, "st3d", step, min(rt.rank, peer), max(rt.rank, peer)
                    )
                )
                rt.irecv(peer, size, tag=step, req=req)
                rt.isend(peer, size, tag=step, req=req + 1)
                req += 2
            rt.waitall()
    return JobTrace(
        "ST3D",
        ranks,
        meta={"app": "stencil3d", "dims": list(dims), "seed": seed},
    )


def transpose_trace(
    num_ranks: int,
    rounds: int = 4,
    message_bytes: int = 262_144,
    seed: int = 0,
) -> JobTrace:
    """Shift-by-N/2 transpose: every message crosses the bisection."""
    if num_ranks < 2 or num_ranks % 2:
        raise ValueError("transpose needs an even rank count >= 2")
    half = num_ranks // 2
    ranks = [RankTrace(r) for r in range(num_ranks)]
    for rnd in range(rounds):
        for rt in ranks:
            peer = (rt.rank + half) % num_ranks
            size = round(
                message_bytes
                * pair_jitter(seed, "tr", rnd, min(rt.rank, peer), max(rt.rank, peer))
            )
            rt.irecv(peer, size, tag=rnd, req=0)
            rt.isend(peer, size, tag=rnd, req=1)
            rt.waitall()
    return JobTrace("TRANSPOSE", ranks, meta={"app": "transpose", "seed": seed})


def alltoall_trace(
    num_ranks: int,
    rounds: int = 1,
    message_bytes: int = 16_384,
    seed: int = 0,
) -> JobTrace:
    """Dense pairwise all-to-all (FFT-style global exchange)."""
    if num_ranks < 2:
        raise ValueError("need at least 2 ranks")
    ranks = [RankTrace(r) for r in range(num_ranks)]
    for rnd in range(rounds):
        for rt in ranks:
            collectives.alltoall(rt, num_ranks, message_bytes, tag=rnd * 512)
    return JobTrace("A2A", ranks, meta={"app": "alltoall", "seed": seed})
