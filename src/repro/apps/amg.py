"""Algebraic MultiGrid (AMG) trace generator.

The AMG solver (derived from BoomerAMG, paper Section III-A) exhibits
"regional communication with decreasing message size": each rank talks to
up to six 3D-stencil neighbours ("depending on rank boundaries" — the
domain is *not* periodic), message sizes shrink as the V-cycle descends
the grid hierarchy, and the run shows three short-duration load surges
with a peak of ~75 KB — small compared with CR and FB.

The generator emits ``cycles`` V-cycles (the three surges). Within a
cycle the rank set coarsens by a factor of two per level (only ranks
whose grid coordinates are multiples of the level stride stay active),
and active ranks exchange halos with stride-distance neighbours at
``peak_bytes / 2**level``. Between cycles a ``Compute`` gap records the
solve time that separates the surges (ignored at replay unless
``compute_scale`` is raised, exactly as in the paper).
"""

from __future__ import annotations

import math

from repro.apps.patterns import coord_3d, grid_dims_3d, neighbors_3d, pair_jitter
from repro.mpi.trace import JobTrace, RankTrace

__all__ = ["amg_trace"]


def amg_trace(
    num_ranks: int,
    cycles: int = 3,
    levels: int = 4,
    peak_bytes: int = 75_000,
    compute_gap_ns: float = 2_000_000.0,
    seed: int = 0,
) -> JobTrace:
    """Build the AMG job trace (three V-cycle surges by default).

    ``peak_bytes`` is the per-rank message load of one surge (the
    paper's Fig. 2f peak, ~75 KB): the whole V-cycle's halo traffic of a
    rank sums to roughly this amount, split over the sweep's levels with
    per-level sizes halving as the grid coarsens.
    """
    if num_ranks < 2:
        raise ValueError("AMG needs at least 2 ranks")
    if cycles < 1:
        raise ValueError("need at least one cycle")
    if levels < 1:
        raise ValueError("need at least one level")

    dims = grid_dims_3d(num_ranks)
    # Levels beyond the grid extent have no neighbours; cap them.
    max_extent = max(dims)
    levels = min(levels, max(1, int(math.log2(max_extent)) + 1))

    ranks = [RankTrace(r) for r in range(num_ranks)]
    profile: list[tuple[str, float]] = []

    # Precompute the neighbour lists of active ranks per level.
    level_neighbors: list[dict[int, list[int]]] = []
    for level in range(levels):
        stride = 1 << level
        active: dict[int, list[int]] = {}
        for r in range(num_ranks):
            x, y, z = coord_3d(r, dims)
            if x % stride or y % stride or z % stride:
                continue
            peers = [
                p
                for p in neighbors_3d(r, dims, periodic=False, stride=stride)
                if _is_active(p, dims, stride)
            ]
            active[r] = peers
        level_neighbors.append(active)

    # Size the per-message halo so one V-cycle moves ~peak_bytes per
    # rank on average: weight each sweep step by the mean number of
    # active neighbour exchanges per rank, with sizes halving per level.
    sweep_template = list(range(levels)) + list(range(levels - 2, -1, -1))
    weight = 0.0
    for level in sweep_template:
        mean_peers = (
            sum(len(p) for p in level_neighbors[level].values()) / num_ranks
        )
        weight += mean_peers / (1 << level)
    level0_bytes = max(1, round(peak_bytes / max(weight, 1e-9)))

    for cycle in range(cycles):
        # Down sweep then up sweep: levels 0..L-1, L-2..0.
        sweep = sweep_template
        for step, level in enumerate(sweep):
            size_base = max(1, level0_bytes >> level)
            active = level_neighbors[level]
            tag = cycle * 64 + step
            for r, peers in active.items():
                if not peers:
                    continue
                rt = ranks[r]
                req = 0
                for peer in peers:
                    size = round(
                        size_base
                        * pair_jitter(
                            seed, "amg", cycle, step, min(r, peer), max(r, peer)
                        )
                    )
                    rt.irecv(peer, size, tag, req=req)
                    rt.isend(peer, size, tag, req=req + 1)
                    req += 2
                rt.waitall()
            mean_peers = (
                sum(len(p) for p in active.values()) / num_ranks if active else 0.0
            )
            profile.append((f"cycle{cycle}/level{level}", mean_peers * size_base))
        for rt in ranks:
            rt.barrier()
            if cycle < cycles - 1 and compute_gap_ns > 0:
                rt.compute(compute_gap_ns)

    return JobTrace(
        "AMG",
        ranks,
        meta={
            "app": "amg",
            "dims": list(dims),
            "cycles": cycles,
            "levels": levels,
            "peak_bytes": peak_bytes,
            "phase_profile": profile,
            "seed": seed,
        },
    )


def _is_active(rank: int, dims: tuple[int, int, int], stride: int) -> bool:
    x, y, z = coord_3d(rank, dims)
    return x % stride == 0 and y % stride == 0 and z % stride == 0
