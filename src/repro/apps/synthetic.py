"""Synthetic background traffic (paper Section IV-C).

To simulate a multijob environment, a synthetic job occupies every node
not assigned to the target application and repeatedly issues messages:

* :class:`UniformRandomTraffic` — each node sends a message to a random
  peer of the synthetic job every ``interval_ns`` (balanced external
  load; the paper uses small intervals, 0.002-1 ms);
* :class:`BurstyTraffic` — every (large) ``interval_ns``, each node
  sends large messages to ``fanout`` peers at once (the paper's
  "huge messages to all other nodes at a predefined interval").

Injectors bypass the MPI replay layer: their messages go straight onto
the fabric (delivery needs no matching). They stop scheduling once the
simulation's stop condition halts the event loop, so the background runs
exactly as long as the target application.

``peak_load_bytes`` reproduces Table II: "the total message load among
all the ranks at a specific time interval".
"""

from __future__ import annotations

from repro.engine.rng import rng_stream
from repro.engine.simulator import Simulator
from repro.network.fabric import Fabric
from repro.network.packet import Message

__all__ = ["UniformRandomTraffic", "BurstyTraffic", "BACKGROUND_JOB_ID"]

#: Job id stamped on background messages (distinct from replay jobs).
BACKGROUND_JOB_ID = -1


class _TrafficBase:
    """Shared timer/injection machinery for background generators."""

    def __init__(
        self,
        nodes: list[int],
        message_bytes: int,
        interval_ns: float,
        seed: int = 0,
        start_ns: float = 0.0,
    ) -> None:
        if len(nodes) < 2:
            raise ValueError("background traffic needs at least 2 nodes")
        if message_bytes < 1:
            raise ValueError("message_bytes must be positive")
        if interval_ns <= 0:
            raise ValueError("interval_ns must be positive")
        self.nodes = list(nodes)
        self.message_bytes = message_bytes
        self.interval_ns = interval_ns
        self.start_ns = start_ns
        self._rng = rng_stream(seed, "background", type(self).__name__)
        self._sim: Simulator | None = None
        self._fabric: Fabric | None = None
        self._msg_id = 0
        self.messages_sent = 0
        self.bytes_sent = 0

    def start(self, sim: Simulator, fabric: Fabric) -> None:
        """Begin injecting (called by the replay engine)."""
        self._sim = sim
        self._fabric = fabric
        # Stagger node phases uniformly over one interval so the
        # "uniform" pattern is not a synchronised pulse.
        offsets = self._rng.uniform(0.0, self.interval_ns, size=len(self.nodes))
        for idx in range(len(self.nodes)):
            sim.at(self.start_ns + float(offsets[idx]), self._tick, idx)

    def _send(self, src: int, dst: int, size: int) -> None:
        assert self._fabric is not None
        self._msg_id += 1
        msg = Message(
            self._msg_id,
            src,
            dst,
            size,
            tag=0,
            src_rank=src,
            dst_rank=dst,
            job=BACKGROUND_JOB_ID,
        )
        self._fabric.inject(msg)
        self.messages_sent += 1
        self.bytes_sent += size

    def _tick(self, idx: int) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def _reschedule(self, idx: int) -> None:
        assert self._sim is not None
        self._sim.schedule(self.interval_ns, self._tick, idx)

    def peak_load_bytes(self) -> int:  # pragma: no cover - overridden
        """Table II: total load issued by all ranks per interval."""
        raise NotImplementedError


class UniformRandomTraffic(_TrafficBase):
    """Every interval, each node sends one message to a random peer."""

    def _tick(self, idx: int) -> None:
        src = self.nodes[idx]
        peer_idx = int(self._rng.integers(len(self.nodes) - 1))
        if peer_idx >= idx:
            peer_idx += 1
        self._send(src, self.nodes[peer_idx], self.message_bytes)
        self._reschedule(idx)

    def peak_load_bytes(self) -> int:
        return len(self.nodes) * self.message_bytes


class BurstyTraffic(_TrafficBase):
    """Every interval, each node blasts ``fanout`` peers at once."""

    def __init__(
        self,
        nodes: list[int],
        message_bytes: int,
        interval_ns: float,
        fanout: int | None = None,
        seed: int = 0,
        start_ns: float = 0.0,
    ) -> None:
        super().__init__(nodes, message_bytes, interval_ns, seed, start_ns)
        max_fanout = len(self.nodes) - 1
        self.fanout = max_fanout if fanout is None else min(fanout, max_fanout)
        if self.fanout < 1:
            raise ValueError("fanout must be at least 1")

    def start(self, sim: Simulator, fabric: Fabric) -> None:
        """Synchronised pulses: every node blasts at the same instants.

        Unlike the uniform pattern (which staggers node phases), bursts
        are the paper's 'all ranks issue messages at a predefined
        interval' — the simultaneous load spike is the phenomenon.
        """
        self._sim = sim
        self._fabric = fabric
        for idx in range(len(self.nodes)):
            sim.at(self.start_ns, self._tick, idx)

    def _tick(self, idx: int) -> None:
        src = self.nodes[idx]
        n = len(self.nodes)
        if self.fanout == n - 1:
            peers = [self.nodes[i] for i in range(n) if i != idx]
        else:
            picks = self._rng.choice(n - 1, size=self.fanout, replace=False)
            peers = [self.nodes[int(p) + 1 if p >= idx else int(p)] for p in picks]
        for dst in peers:
            self._send(src, dst, self.message_bytes)
        self._reschedule(idx)

    def peak_load_bytes(self) -> int:
        return len(self.nodes) * self.fanout * self.message_bytes
