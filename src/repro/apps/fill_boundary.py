"""Fill Boundary (FB) trace generator.

The FB mini-app fills periodic domain boundaries and ghost cells in
BoxLib (paper Section III-A): a 3D block domain decomposition with
"intensive communication between neighbors as well as many-to-many
communication across the set of MPI ranks", continuously sending
messages whose sizes fluctuate strongly between 100 KB and 2560 KB.

Per step, the generator does a 6-neighbour periodic halo exchange at a
size driven by a strongly fluctuating multiplier cycle, plus a sparse
many-to-many phase built from ``far_rounds`` random perfect matchings
(symmetric by construction, so the trace stays balanced).
"""

from __future__ import annotations

from repro.apps.patterns import grid_dims_3d, neighbors_3d, pair_jitter
from repro.engine.rng import rng_stream
from repro.mpi.trace import JobTrace, RankTrace

__all__ = ["fill_boundary_trace", "DEFAULT_FLUCTUATION"]

#: Multiplier cycle giving the paper's 100 KB - 2560 KB swing around the
#: default 1280 KB base (0.08 * 1280 KB = 102 KB ... 2.0 * 1280 KB = 2560 KB).
DEFAULT_FLUCTUATION = (0.08, 1.0, 0.3, 2.0, 0.15, 0.6)


def fill_boundary_trace(
    num_ranks: int,
    steps: int = 6,
    base_bytes: int = 1_280_000,
    far_rounds: int = 2,
    far_fraction: float = 0.02,
    fluctuation: tuple[float, ...] = DEFAULT_FLUCTUATION,
    seed: int = 0,
) -> JobTrace:
    """Build the FB job trace.

    ``base_bytes`` scales every message; halo messages swing through
    ``fluctuation`` multiples of it over the steps. ``far_rounds`` perfect
    matchings per step carry the many-to-many share at ``far_fraction``
    of the halo size.
    """
    if num_ranks < 2:
        raise ValueError("FB needs at least 2 ranks")
    if steps < 1:
        raise ValueError("need at least one step")
    if not fluctuation:
        raise ValueError("fluctuation cycle must be non-empty")
    if not 0 <= far_rounds <= 6:
        raise ValueError("far_rounds must be in [0, 6] (tag-space layout)")

    dims = grid_dims_3d(num_ranks)
    ranks = [RankTrace(r) for r in range(num_ranks)]
    neighbor_lists = [
        neighbors_3d(r, dims, periodic=True) for r in range(num_ranks)
    ]
    profile: list[tuple[str, float]] = []
    rng = rng_stream(seed, "fb", "matchings")

    for step in range(steps):
        mult = fluctuation[step % len(fluctuation)]
        halo_bytes = max(1, round(base_bytes * mult))

        # Halo phase: periodic 3D face neighbours.
        for rt in ranks:
            me = rt.rank
            req = 0
            for peer in neighbor_lists[me]:
                size = round(
                    halo_bytes
                    * pair_jitter(seed, "fb-halo", step, min(me, peer), max(me, peer))
                )
                tag = step * 8
                rt.irecv(peer, size, tag, req=req)
                rt.isend(peer, size, tag, req=req + 1)
                req += 2
            rt.waitall()
        mean_neighbors = sum(len(nl) for nl in neighbor_lists) / num_ranks
        profile.append((f"step{step}/halo", mean_neighbors * halo_bytes))

        # Many-to-many phase: `far_rounds` random perfect matchings.
        far_bytes = max(1, round(halo_bytes * far_fraction))
        for rnd in range(far_rounds):
            perm = rng.permutation(num_ranks)
            tag = step * 8 + 1 + rnd
            for i in range(0, num_ranks - 1, 2):
                a, b = int(perm[i]), int(perm[i + 1])
                size = round(
                    far_bytes * pair_jitter(seed, "fb-far", step, rnd, min(a, b), max(a, b))
                )
                for me, peer in ((a, b), (b, a)):
                    rt = ranks[me]
                    rt.irecv(peer, size, tag, req=0)
                    rt.isend(peer, size, tag, req=1)
            for rt in ranks:
                rt.waitall()
        profile.append((f"step{step}/far", far_rounds * far_bytes))

        for rt in ranks:
            rt.barrier()

    return JobTrace(
        "FB",
        ranks,
        meta={
            "app": "fill-boundary",
            "dims": list(dims),
            "steps": steps,
            "base_bytes": base_bytes,
            "phase_profile": profile,
            "seed": seed,
        },
    )
