"""Ablation: UGAL congestion sensing — local (Aries-like) vs path-wide.

The adaptive policy defaults to UGAL-L (only the source router's own
queues are observable). The idealised "path" mode sums backlog over the
whole candidate route — an upper bound on what adaptive routing could
do with global knowledge. The gap between the two is the price of
realistic, local-only congestion information.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _common import bench_seed, save_report

import repro
from repro.core.runner import build_topology
from repro.engine.simulator import Simulator
from repro.metrics.collector import RunMetrics
from repro.mpi.replay import ReplayEngine
from repro.network.fabric import Fabric
from repro.placement.machine import Machine
from repro.routing.adaptive import AdaptiveRouting


def run_one(mode: str):
    cfg = repro.small().with_seed(bench_seed())
    trace = repro.fill_boundary_trace(num_ranks=32, seed=bench_seed()).scaled(0.05)
    topo = build_topology(cfg.topology)
    machine = Machine(cfg.topology)
    nodes = machine.allocate("cont", trace.num_ranks, seed=bench_seed())
    sim = Simulator()
    routing = AdaptiveRouting(seed=bench_seed(), mode=mode)
    fabric = Fabric(sim, topo, cfg.network, routing)
    engine = ReplayEngine(sim, fabric)
    engine.add_job(0, trace, nodes)
    engine.run(target_job=0)
    metrics = RunMetrics.from_run(fabric, topo, engine.job_result(0), nodes)
    nonmin = routing.nonminimal_taken / max(
        1, routing.minimal_taken + routing.nonminimal_taken
    )
    return metrics, nonmin


def test_ablation_adaptive_sensing(benchmark):
    results = benchmark.pedantic(
        lambda: {mode: run_one(mode) for mode in ("local", "path")},
        rounds=1,
        iterations=1,
    )

    lines = ["Ablation — adaptive congestion sensing (FB under cont placement)"]
    lines.append(
        f"{'mode':<8} {'median ms':>10} {'max ms':>10} {'local sat ms':>13} "
        f"{'nonmin %':>9}"
    )
    for mode, (m, nonmin) in results.items():
        lines.append(
            f"{mode:<8} {m.median_comm_time_ns / 1e6:>10.4f} "
            f"{m.max_comm_time_ns / 1e6:>10.4f} "
            f"{m.total_local_sat_ns / 1e6:>13.4f} {100 * nonmin:>8.1f}%"
        )
    save_report("ablation_adaptive_sensing", "\n".join(lines))

    # Both modes finish the workload; decisions actually differ.
    local_m, local_nonmin = results["local"]
    path_m, path_nonmin = results["path"]
    assert local_m.median_comm_time_ns > 0 and path_m.median_comm_time_ns > 0
    assert local_nonmin != path_nonmin
