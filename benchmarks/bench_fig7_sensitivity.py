"""Figure 7: sensitivity of communication performance to message load.

Sweeps each application's message sizes over the paper's relative grid
(CR/FB: 0.01x-2x, AMG: 0.5x-20x of the app's base load) under the four
extreme configurations and reports the maximum communication time
relative to rand-adp — the paper's Figure 7(a-c).

Shape assertions encode the crossovers the paper reports: contiguous
wins at low intensity, balanced placement wins as intensity grows.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _common import bench_config, bench_seed, bench_trace, save_report

from repro.core.report import format_series_table
from repro.core.sensitivity import PAPER_SCALES, sensitivity_sweep

#: Reduced scale grids keeping the paper's span with fewer points.
BENCH_SCALES = {
    "CR": (0.01, 0.1, 0.5, 1.0, 2.0),
    "FB": (0.01, 0.1, 0.5, 1.0, 2.0),
    "AMG": (0.5, 1.0, 5.0, 20.0),
}


def run_sweeps():
    out = {}
    for app, scales in BENCH_SCALES.items():
        out[app] = sensitivity_sweep(
            bench_config(), bench_trace(app), scales, seed=bench_seed()
        )
    return out


def test_fig7_sensitivity(benchmark):
    sweeps = benchmark.pedantic(run_sweeps, rounds=1, iterations=1)

    sections = []
    for i, (app, sweep) in enumerate(sweeps.items()):
        rel = sweep.relative()
        sections.append(
            format_series_table(
                sweep.scales,
                rel,
                f"Figure 7({'abc'[i]}) — {app} max comm time relative "
                "to rand-adp (%)",
                x_name="msg scale",
            )
        )
    save_report("fig7_sensitivity", "\n\n".join(sections))

    # Paper: all scale grids come from Section IV-B.
    assert set(BENCH_SCALES) == set(PAPER_SCALES)

    cr = sweeps["CR"].relative()
    # CR at high load: random placement beats contiguous under minimal
    # routing ("random-node placement outperforms contiguous by up to
    # 7.5%" as load grows).
    assert cr["rand-min"][-1] < cr["cont-min"][-1]

    fb = sweeps["FB"].relative()
    # FB: rand-adp (the 100% baseline) is best, or within noise of best,
    # at the highest intensity ("always gives the best communication
    # performance with increased communication intensity").
    assert min(fb[label][-1] for label in fb) >= 100.0 - 5.0

    amg = sweeps["AMG"].relative()
    # AMG (Fig 7c): "minimal routing performs badly due to inability to
    # traverse nonminimal paths, while adaptive routing achieves better
    # performance" as the load grows.
    assert amg["cont-adp"][-1] < amg["cont-min"][-1]
    assert amg["rand-adp"][-1] <= amg["rand-min"][-1]
    # Minimal routing's relative cost grows with intensity.
    assert amg["rand-min"][-1] >= amg["rand-min"][0] - 5.0
