"""Figure 9: CR under uniform random and bursty background traffic.

(a) communication time under uniform random background, (b) under
bursty background, (c) local channel traffic CDF of CR's routers under
the bursty pattern.

Paper findings: frequent communicators like CR barely degrade under
uniform random background but suffer badly under bursty background;
localized configurations (cont-min / cab-min) vary least.
"""

import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))
from _common import bench_config, bench_seed, bench_trace, interference_grid, save_report

import repro
from repro.core.report import format_box_table, format_cdf_table


def run_all():
    return {
        "uniform": interference_grid("CR", "uniform"),
        "bursty": interference_grid("CR", "bursty"),
    }


def test_fig9_cr_background(benchmark):
    grids = benchmark.pedantic(run_all, rounds=1, iterations=1)

    sections = [
        format_box_table(
            grids["uniform"].comm_time_boxes("CR"),
            "Figure 9(a) — CR communication time, uniform random background",
            unit="ms",
        ),
        format_box_table(
            grids["bursty"].comm_time_boxes("CR"),
            "Figure 9(b) — CR communication time, bursty background",
            unit="ms",
        ),
        format_cdf_table(
            grids["bursty"].traffic_cdf("CR", "local"),
            "Figure 9(c) — CR-router local channel traffic CDF (bursty)",
            "MB",
        ),
    ]

    alone = {
        label: repro.run_single(
            bench_config(),
            bench_trace("CR"),
            *label.rsplit("-", 1),
            seed=bench_seed(),
        ).metrics.median_comm_time_ns
        for label in ("cont-min", "rand-adp")
    }
    uniform = grids["uniform"]
    bursty = grids["bursty"]
    lines = ["degradation vs interference-free (median):"]
    for label in ("cont-min", "rand-adp"):
        u = uniform.get("CR", label).metrics.median_comm_time_ns / alone[label]
        b = bursty.get("CR", label).metrics.median_comm_time_ns / alone[label]
        lines.append(f"  {label}: uniform {u:5.2f}x   bursty {b:5.2f}x")
    sections.append("\n".join(lines))
    save_report("fig9_cr_background", "\n\n".join(sections))

    # "No obvious performance variation ... under uniform random traffic"
    # for the localized configs; bursty hurts much more than uniform.
    u_cm = uniform.get("CR", "cont-min").metrics.median_comm_time_ns
    assert u_cm / alone["cont-min"] < 2.0
    # Bursty background: localized cont-min/cab-min degrade least.
    med = {
        label: bursty.get("CR", label).metrics.median_comm_time_ns
        for label in bursty.labels()
    }
    localized_best = min(med["cont-min"], med["cab-min"])
    assert localized_best <= np.median(list(med.values()))
