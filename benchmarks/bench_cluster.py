"""Cluster-stream engine throughput benchmark (the repro.cluster gate).

Times one seeded tiny-preset stream — default CR/FB/AMG mix on the
flow backend — twice per repeat: cold (fresh cache directory, every
epoch cell simulated) and warm (same directory, every cell a cache
hit). Reports epochs per second for both phases, the warm-over-cold
speedup, and the warm cache hit rate. The warm phase is the
correctness-adjacent number: a hit rate below 1.0 means epoch-cell
identity broke and warm re-runs are silently re-simulating.

Usage::

    python benchmarks/bench_cluster.py                   # full run
    python benchmarks/bench_cluster.py --quick           # CI smoke
    python benchmarks/bench_cluster.py --out BENCH.json
    python benchmarks/bench_cluster.py --quick \\
        --compare BENCH_cluster.json --max-regression 0.25

``--compare`` exits non-zero when cold epochs/s fall more than
``--max-regression`` below the reference file or the warm cache hit
rate drops under 1.0.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import tempfile
import time
from pathlib import Path

import repro
from repro.cluster import run_stream

#: Versioned result-file schema.
SCHEMA = "repro-bench-cluster/v1"

#: One simulated hour at moderate load: ~8 jobs, ~16 epochs, ~22
#: cells on the tiny machine — long enough that the epoch loop (not
#: interpreter startup) dominates, short enough to repeat.
SCENARIO = {
    "preset": "tiny",
    "mix": "AMG=1,CR=1,FB=1",
    "duration_s": 3600.0,
    "load": 0.6,
    "policy": "cont",
    "routing": "adp",
    "backend": "flow",
    "seed": 7,
}


def _stream_once(cache_dir: str) -> tuple[float, dict]:
    """One full stream against ``cache_dir``; returns (wall, counters)."""
    cfg = repro.tiny()
    t0 = time.perf_counter()
    res = run_stream(
        cfg,
        mix=SCENARIO["mix"],
        duration_s=SCENARIO["duration_s"],
        load=SCENARIO["load"],
        policy=SCENARIO["policy"],
        routing=SCENARIO["routing"],
        backend=SCENARIO["backend"],
        seed=SCENARIO["seed"],
        cache=cache_dir,
    )
    return time.perf_counter() - t0, dict(res.counters)


def bench(repeats: int) -> dict:
    """Time cold+warm phases per repeat; return the result doc."""
    phases: dict[str, list[float]] = {"cold": [], "warm": []}
    counters: dict[str, dict] = {}
    for rep in range(repeats):
        with tempfile.TemporaryDirectory(prefix="bench-cluster-") as tmp:
            for phase in ("cold", "warm"):
                wall, c = _stream_once(tmp)
                phases[phase].append(wall)
                counters[phase] = c
                print(
                    f"rep {rep + 1}/{repeats} {phase:>4}: {wall:.3f}s "
                    f"({c['cells_simulated']} simulated, "
                    f"{c['cells_cached']} cached)",
                    file=sys.stderr,
                )
    configs = {}
    for phase, walls in phases.items():
        mean = statistics.mean(walls)
        c = counters[phase]
        configs[phase] = {
            "mean_s": round(mean, 4),
            "stdev_s": round(
                statistics.stdev(walls) if len(walls) > 1 else 0.0, 4
            ),
            "min_s": round(min(walls), 4),
            "repeats": repeats,
            "epochs": c["epochs"],
            "cells_planned": c["cells_planned"],
            "cells_simulated": c["cells_simulated"],
            "cells_cached": c["cells_cached"],
            "epochs_per_s": round(c["epochs"] / mean, 2),
        }
    warm = counters["warm"]
    hit_rate = (
        warm["cells_cached"] / warm["cells_planned"]
        if warm["cells_planned"]
        else 0.0
    )
    speedup = configs["cold"]["mean_s"] / configs["warm"]["mean_s"]
    print(
        f"warm cache hit rate {hit_rate:.2f}, "
        f"warm speedup {speedup:.1f}x",
        file=sys.stderr,
    )
    return {
        "schema": SCHEMA,
        "scenario": SCENARIO,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "configs": configs,
        "warm_cache_hit_rate": round(hit_rate, 4),
        "warm_speedup": round(speedup, 2),
    }


def compare(doc: dict, ref_path: Path, max_regression: float) -> int:
    """Gate ``doc`` against a reference file; returns the exit code."""
    ref = json.loads(ref_path.read_text())
    baseline = ref.get("after", ref)  # PR files keep before/after blocks
    if baseline.get("schema") != SCHEMA:
        print(f"schema mismatch in {ref_path}, skipping gate", file=sys.stderr)
        return 0
    failed = False
    for phase, cfg in baseline["configs"].items():
        cur = doc["configs"].get(phase)
        if cur is None:
            print(f"MISSING  {phase}: not measured", file=sys.stderr)
            failed = True
            continue
        ratio = cur["epochs_per_s"] / cfg["epochs_per_s"]
        status = "OK" if ratio >= 1.0 - max_regression else "REGRESSED"
        print(
            f"{status:>9}  {phase}: {cur['epochs_per_s']:,} epochs/s vs "
            f"reference {cfg['epochs_per_s']:,} ({ratio:.2f}x)",
            file=sys.stderr,
        )
        if status != "OK":
            failed = True
    status = "OK" if doc["warm_cache_hit_rate"] >= 1.0 else "BROKEN"
    print(
        f"{status:>9}  warm cache hit rate: "
        f"{doc['warm_cache_hit_rate']:.2f} (floor 1.00)",
        file=sys.stderr,
    )
    if status != "OK":
        failed = True
    return 1 if failed else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--repeats", type=int, default=5, help="cold+warm pairs to time"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="2 repeats (CI smoke mode)",
    )
    parser.add_argument(
        "--out", default=None, metavar="JSON", help="write results to file"
    )
    parser.add_argument(
        "--compare",
        default=None,
        metavar="JSON",
        help="reference BENCH_cluster.json to gate epochs/s against",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="tolerated fractional epochs/s drop vs reference (default 0.25)",
    )
    args = parser.parse_args(argv)

    repeats = 2 if args.quick else args.repeats
    doc = bench(repeats=repeats)

    if args.out:
        Path(args.out).write_text(json.dumps(doc, indent=2) + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        print(json.dumps(doc, indent=2))

    if args.compare:
        return compare(doc, Path(args.compare), args.max_regression)
    return 0


if __name__ == "__main__":
    sys.exit(main())
