"""Ablation: eager vs rendezvous message protocol.

The paper's replay layer (and ours, by default) is eager: a send never
waits for the receiver. Real MPI switches to a rendezvous handshake
above a threshold, coupling sender and receiver progress. This ablation
shows the protocol's effect on FB (large halo messages, so everything
above a small threshold goes rendezvous) — the qualitative placement
trade-off survives, but absolute times stretch.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _common import bench_seed, save_report

import repro
from repro.core.runner import build_topology
from repro.engine.simulator import Simulator
from repro.metrics.collector import RunMetrics
from repro.mpi.replay import ReplayEngine
from repro.network.fabric import Fabric
from repro.placement.machine import Machine
from repro.routing import make_routing

THRESHOLD = 8192


def run_one(placement: str, threshold):
    cfg = repro.small().with_seed(bench_seed())
    trace = repro.fill_boundary_trace(num_ranks=32, seed=bench_seed()).scaled(0.05)
    topo = build_topology(cfg.topology)
    machine = Machine(cfg.topology)
    nodes = machine.allocate(placement, trace.num_ranks, seed=bench_seed())
    sim = Simulator()
    fabric = Fabric(sim, topo, cfg.network, make_routing("adp", seed=bench_seed()))
    engine = ReplayEngine(sim, fabric, eager_threshold=threshold)
    engine.add_job(0, trace, nodes)
    engine.run(target_job=0)
    return RunMetrics.from_run(fabric, topo, engine.job_result(0), nodes)


def test_ablation_protocol(benchmark):
    results = benchmark.pedantic(
        lambda: {
            (proto, placement): run_one(
                placement, None if proto == "eager" else THRESHOLD
            )
            for proto in ("eager", "rendezvous")
            for placement in ("cont", "rand")
        },
        rounds=1,
        iterations=1,
    )

    lines = ["Ablation — message protocol (FB under adaptive routing, ms)"]
    lines.append(f"{'protocol':<12} {'cont median':>12} {'rand median':>12}")
    for proto in ("eager", "rendezvous"):
        cont = results[(proto, "cont")].median_comm_time_ns / 1e6
        rand = results[(proto, "rand")].median_comm_time_ns / 1e6
        lines.append(f"{proto:<12} {cont:>12.4f} {rand:>12.4f}")
    save_report("ablation_protocol", "\n".join(lines))

    # Rendezvous adds handshake latency under either placement.
    for placement in ("cont", "rand"):
        assert (
            results[("rendezvous", placement)].median_comm_time_ns
            >= results[("eager", placement)].median_comm_time_ns
        )
