"""Flow-vs-packet backend throughput benchmark (the repro.flow gate).

Times the tiny-preset 5x2 placement x routing grid — serial, cache
off — under three configurations at a realistic message scale:
``packet`` (the reference backend), ``flow`` (the fluid backend at its
production defaults, i.e. the vectorized solver behind its adaptive
dispatch), and ``flow_batch`` (the fluid backend with cells chunked
through :class:`repro.flow.BatchedFlowRunner`). Reports wall-clock
mean/stdev, grid cells per second, the flow-over-packet speedup, and
the batched-over-unbatched flow speedup. Repeats are interleaved
A/B/C (packet, flow, flow_batch, ...) so slow clock drift or thermal
throttling biases every configuration equally instead of whichever
ran last. This is the workload behind the speedup claims in
``BENCH_flow.json`` and the CI flow-smoke / flow-batch-smoke gates.

Usage::

    python benchmarks/bench_flow.py                   # full run
    python benchmarks/bench_flow.py --quick           # CI smoke
    python benchmarks/bench_flow.py --out BENCH.json
    python benchmarks/bench_flow.py --quick \\
        --compare BENCH_flow.json --max-regression 0.25

``--compare`` exits non-zero when any configuration's cells/s fall
more than ``--max-regression`` below the reference file, the measured
flow speedup drops under ``--min-speedup`` (default 5x, the
acceptance floor from DESIGN.md S16), or the batched flow speedup
drops under ``--min-batch-speedup`` (default 0.9: on this serial
single-machine workload batching is gated on *not hurting* — the
route models are already process-warm, so the chunking can only
recover task overhead; see DESIGN.md S18 for the Amdahl analysis).
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time
from pathlib import Path

import repro
from repro.core.study import TradeoffStudy
from repro.flow.routes import BACKEND_NAMES

#: Versioned result-file schema. v2 added the ``flow_batch``
#: configuration and the ``batch_speedup`` field.
SCHEMA = "repro-bench-flow/v2"

#: The cross-fidelity scenario at a non-degenerate message scale
#: (0.05 leaves only 1-3 packets per message, which understates the
#: fluid model's advantage; 0.2 keeps the packet runs short enough
#: to repeat while the speedup is already representative).
SCENARIO = {
    "preset": "tiny",
    "app": "FB",
    "ranks": 8,
    "trace_seed": 3,
    "msg_scale": 0.2,
    "study_seed": 7,
    "flow_batch": 5,
}

#: Timed configurations: both backends plus the batched flow path.
CONFIG_NAMES = ("packet", "flow", "flow_batch")

assert set(BACKEND_NAMES) <= set(CONFIG_NAMES)


def _grid_once(config_name: str) -> tuple[float, int]:
    """One full 5x2 grid run; returns (wall seconds, grid cells)."""
    backend = "flow" if config_name == "flow_batch" else config_name
    flow_batch = SCENARIO["flow_batch"] if config_name == "flow_batch" else 0
    cfg = repro.tiny()
    trace = repro.fill_boundary_trace(
        num_ranks=SCENARIO["ranks"], seed=SCENARIO["trace_seed"]
    ).scaled(SCENARIO["msg_scale"])
    t0 = time.perf_counter()
    result = TradeoffStudy(
        cfg,
        {SCENARIO["app"]: trace},
        seed=SCENARIO["study_seed"],
        backend=backend,
    ).run(flow_batch=flow_batch)
    return time.perf_counter() - t0, len(result.runs)


def bench(repeats: int, warmup: int = 1) -> dict:
    """Time both backends A/B-interleaved; return the result doc."""
    times: dict[str, list[float]] = {c: [] for c in CONFIG_NAMES}
    cells = 0
    for backend in CONFIG_NAMES:
        for _ in range(warmup):
            _grid_once(backend)
    for rep in range(repeats):
        for backend in CONFIG_NAMES:  # interleaved: packet, flow, ...
            wall, cells = _grid_once(backend)
            times[backend].append(wall)
            print(
                f"rep {rep + 1}/{repeats} {backend:>6}: {wall:.4f}s",
                file=sys.stderr,
            )
    configs = {}
    for backend, walls in times.items():
        mean = statistics.mean(walls)
        configs[backend] = {
            "mean_s": round(mean, 4),
            "stdev_s": round(
                statistics.stdev(walls) if len(walls) > 1 else 0.0, 4
            ),
            "min_s": round(min(walls), 4),
            "repeats": repeats,
            "cells": cells,
            "cells_per_s": round(cells / mean, 2),
        }
    speedup = configs["packet"]["mean_s"] / configs["flow"]["mean_s"]
    batch_speedup = configs["flow"]["mean_s"] / configs["flow_batch"]["mean_s"]
    print(f"flow speedup over packet: {speedup:.1f}x", file=sys.stderr)
    print(f"batched flow speedup: {batch_speedup:.2f}x", file=sys.stderr)
    return {
        "schema": SCHEMA,
        "scenario": SCENARIO,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "configs": configs,
        "speedup": round(speedup, 2),
        "batch_speedup": round(batch_speedup, 2),
    }


def compare(
    doc: dict,
    ref_path: Path,
    max_regression: float,
    min_speedup: float,
    min_batch_speedup: float,
) -> int:
    """Gate ``doc`` against a reference file; returns the exit code."""
    ref = json.loads(ref_path.read_text())
    baseline = ref.get("after", ref)  # PR files keep before/after blocks
    if baseline.get("schema") != SCHEMA:
        print(f"schema mismatch in {ref_path}, skipping gate", file=sys.stderr)
        return 0
    failed = False
    for backend, cfg in baseline["configs"].items():
        cur = doc["configs"].get(backend)
        if cur is None:
            print(f"MISSING  {backend}: not measured", file=sys.stderr)
            failed = True
            continue
        ratio = cur["cells_per_s"] / cfg["cells_per_s"]
        status = "OK" if ratio >= 1.0 - max_regression else "REGRESSED"
        print(
            f"{status:>9}  {backend}: {cur['cells_per_s']:,} cells/s vs "
            f"reference {cfg['cells_per_s']:,} ({ratio:.2f}x)",
            file=sys.stderr,
        )
        if status != "OK":
            failed = True
    status = "OK" if doc["speedup"] >= min_speedup else "REGRESSED"
    print(
        f"{status:>9}  speedup: {doc['speedup']:.1f}x "
        f"(floor {min_speedup:.1f}x)",
        file=sys.stderr,
    )
    if status != "OK":
        failed = True
    status = "OK" if doc["batch_speedup"] >= min_batch_speedup else "REGRESSED"
    print(
        f"{status:>9}  batch speedup: {doc['batch_speedup']:.2f}x "
        f"(floor {min_batch_speedup:.2f}x)",
        file=sys.stderr,
    )
    if status != "OK":
        failed = True
    return 1 if failed else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--repeats", type=int, default=5, help="timed runs per backend"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="2 repeats (CI smoke mode)",
    )
    parser.add_argument(
        "--out", default=None, metavar="JSON", help="write results to file"
    )
    parser.add_argument(
        "--compare",
        default=None,
        metavar="JSON",
        help="reference BENCH_flow.json to gate cells/s against",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="tolerated fractional cells/s drop vs reference (default 0.25)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=5.0,
        help="minimum flow-over-packet speedup (default 5.0)",
    )
    parser.add_argument(
        "--min-batch-speedup",
        type=float,
        default=0.9,
        help=(
            "minimum batched-over-unbatched flow speedup (default 0.9: "
            "batching must not hurt on the serial reference workload, "
            "with headroom for timer noise at the grid's short walls)"
        ),
    )
    args = parser.parse_args(argv)

    repeats = 2 if args.quick else args.repeats
    doc = bench(repeats=repeats, warmup=1)

    if args.out:
        Path(args.out).write_text(json.dumps(doc, indent=2) + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        print(json.dumps(doc, indent=2))

    if args.compare:
        return compare(
            doc,
            Path(args.compare),
            args.max_regression,
            args.min_speedup,
            args.min_batch_speedup,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
