"""Flow-vs-packet backend throughput benchmark (the repro.flow gate).

Times two scenarios, each a full 5x2 placement x routing grid —
serial, cache off:

* ``xfid`` (cross-fidelity): the tiny-preset fill-boundary workload at
  a realistic message scale, timed under ``packet`` (the reference
  backend) and ``flow`` (the fluid backend on the production array
  fabric).  This is the workload behind the flow-over-packet speedup
  claim; packet runs are affordable here.
* ``contention`` (fabric gate): the small-preset crystal-router
  workload at 64 ranks, where thousands of concurrent flows contend on
  shared links and the max-min solver dominates.  Timed under
  ``flow_obj`` (the frozen *object* fabric, the PR-7 baseline),
  ``flow_vec`` (the array fabric, the production default), and
  ``flow_batch`` (the array fabric with cells chunked through
  :class:`repro.flow.BatchedFlowRunner`).  Packet is not timed here —
  at this scale a single packet run costs minutes and the
  cross-fidelity claim is already covered by ``xfid``.

Reports wall-clock mean/stdev, grid cells per second, the
flow-over-packet speedup (``xfid``), the array-fabric speedup over the
object fabric (``contention``), and the batched-over-unbatched
speedup.  Repeats are interleaved A/B (every configuration once per
rep) so slow clock drift or thermal throttling biases every
configuration equally instead of whichever ran last.  This is the
workload behind the speedup claims in ``BENCH_flow.json`` and the CI
flow-smoke / flow-batch-smoke gates.

Usage::

    python benchmarks/bench_flow.py                   # full run
    python benchmarks/bench_flow.py --quick           # CI smoke
    python benchmarks/bench_flow.py --out BENCH.json
    python benchmarks/bench_flow.py --quick \\
        --compare BENCH_flow.json --max-regression 0.25

``--compare`` exits non-zero when any configuration's cells/s fall
more than ``--max-regression`` below the reference file, the measured
flow speedup drops under ``--min-speedup`` (default 5x, the
acceptance floor from DESIGN.md S16), the array-fabric speedup drops
under ``--min-vec-speedup`` (default 1.5x, the S19 CI floor under the
2x acceptance target), or the batched flow speedup drops under
``--min-batch-speedup`` (default 0.9: on this serial single-machine
workload batching is gated on *not hurting* — the route models are
already process-warm, so the chunking can only recover task overhead;
see DESIGN.md S18/S19 for the Amdahl analysis).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import time
from pathlib import Path

import repro
from repro.core.study import TradeoffStudy
from repro.flow.routes import BACKEND_NAMES

#: Versioned result-file schema. v2 added the ``flow_batch``
#: configuration and the ``batch_speedup`` field; v3 split the bench
#: into the ``xfid`` and ``contention`` scenarios, added the
#: ``flow_obj``/``flow_vec`` fabric pair and ``vec_speedup``, and
#: redefined ``batch_speedup`` as flow_vec/flow_batch (both run the
#: production array fabric).
SCHEMA = "repro-bench-flow/v3"

#: Scenario parameters. ``xfid`` keeps a non-degenerate message scale
#: (0.05 leaves only 1-3 packets per message, which understates the
#: fluid model's advantage; 0.2 keeps the packet runs short enough to
#: repeat while the speedup is already representative).
#: ``contention`` picks the regime the array fabric was built for:
#: many ranks on the small preset so solves see hundreds of contended
#: links and the per-flow Python overhead of the object fabric is the
#: bottleneck being measured.
SCENARIOS = {
    "xfid": {
        "preset": "tiny",
        "app": "FB",
        "ranks": 8,
        "trace_seed": 3,
        "msg_scale": 0.2,
        "study_seed": 7,
    },
    "contention": {
        "preset": "small",
        "app": "CR",
        "ranks": 64,
        "trace_seed": 3,
        "msg_scale": 0.2,
        "study_seed": 7,
        "flow_batch": 5,
    },
}

#: Timed configurations: scenario, backend, fabric pin, and batch
#: chunk. ``flow`` measures the production default (array fabric);
#: ``flow_obj`` measures the frozen object fabric, the PR-7 baseline
#: the vec gate compares against.
CONFIGS: dict[str, dict] = {
    "packet": {"scenario": "xfid", "backend": "packet", "fabric": None},
    "flow": {"scenario": "xfid", "backend": "flow", "fabric": "array"},
    "flow_obj": {
        "scenario": "contention", "backend": "flow", "fabric": "object",
    },
    "flow_vec": {
        "scenario": "contention", "backend": "flow", "fabric": "array",
    },
    "flow_batch": {
        "scenario": "contention", "backend": "flow", "fabric": "array",
        "batch": True,
    },
}

assert set(BACKEND_NAMES) <= set(CONFIGS)


def _trace(sc: dict):
    if sc["app"] == "CR":
        base = repro.crystal_router_trace(
            num_ranks=sc["ranks"], seed=sc["trace_seed"]
        )
    else:
        base = repro.fill_boundary_trace(
            num_ranks=sc["ranks"], seed=sc["trace_seed"]
        )
    return base.scaled(sc["msg_scale"])


def _grid_once(config_name: str) -> tuple[float, int]:
    """One full 5x2 grid run; returns (wall seconds, grid cells)."""
    spec = CONFIGS[config_name]
    sc = SCENARIOS[spec["scenario"]]
    flow_batch = sc.get("flow_batch", 0) if spec.get("batch") else 0
    cfg = getattr(repro, sc["preset"])()
    trace = _trace(sc)
    fabric = spec["fabric"]
    prev = os.environ.get("REPRO_FLOW_FABRIC")
    if fabric is not None:
        os.environ["REPRO_FLOW_FABRIC"] = fabric
    try:
        t0 = time.perf_counter()
        result = TradeoffStudy(
            cfg,
            {sc["app"]: trace},
            seed=sc["study_seed"],
            backend=spec["backend"],
        ).run(flow_batch=flow_batch)
        wall = time.perf_counter() - t0
    finally:
        if fabric is not None:
            if prev is None:
                del os.environ["REPRO_FLOW_FABRIC"]
            else:
                os.environ["REPRO_FLOW_FABRIC"] = prev
    return wall, len(result.runs)


def bench(repeats: int, warmup: int = 1) -> dict:
    """Time every configuration A/B-interleaved; return the result doc."""
    times: dict[str, list[float]] = {c: [] for c in CONFIGS}
    cells: dict[str, int] = {c: 0 for c in CONFIGS}
    for config in CONFIGS:
        for _ in range(warmup):
            _grid_once(config)
    for rep in range(repeats):
        for config in CONFIGS:  # interleaved: packet, flow, ...
            wall, n = _grid_once(config)
            times[config].append(wall)
            cells[config] = n
            print(
                f"rep {rep + 1}/{repeats} {config:>10}: {wall:.4f}s",
                file=sys.stderr,
            )
    configs = {}
    for config, walls in times.items():
        mean = statistics.mean(walls)
        configs[config] = {
            "scenario": CONFIGS[config]["scenario"],
            "mean_s": round(mean, 4),
            "stdev_s": round(
                statistics.stdev(walls) if len(walls) > 1 else 0.0, 4
            ),
            "min_s": round(min(walls), 4),
            "repeats": repeats,
            "cells": cells[config],
            "cells_per_s": round(cells[config] / mean, 2),
        }
    speedup = configs["packet"]["mean_s"] / configs["flow"]["mean_s"]
    vec_speedup = configs["flow_obj"]["mean_s"] / configs["flow_vec"]["mean_s"]
    batch_speedup = (
        configs["flow_vec"]["mean_s"] / configs["flow_batch"]["mean_s"]
    )
    print(f"flow speedup over packet: {speedup:.1f}x", file=sys.stderr)
    print(
        f"array-fabric speedup over object: {vec_speedup:.2f}x",
        file=sys.stderr,
    )
    print(f"batched flow speedup: {batch_speedup:.2f}x", file=sys.stderr)
    return {
        "schema": SCHEMA,
        "scenarios": SCENARIOS,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "configs": configs,
        "speedup": round(speedup, 2),
        "vec_speedup": round(vec_speedup, 2),
        "batch_speedup": round(batch_speedup, 2),
    }


def compare(
    doc: dict,
    ref_path: Path,
    max_regression: float,
    min_speedup: float,
    min_batch_speedup: float,
    min_vec_speedup: float,
) -> int:
    """Gate ``doc`` against a reference file; returns the exit code."""
    ref = json.loads(ref_path.read_text())
    baseline = ref.get("after", ref)  # PR files keep before/after blocks
    if baseline.get("schema") != SCHEMA:
        print(f"schema mismatch in {ref_path}, skipping gate", file=sys.stderr)
        return 0
    failed = False
    for config, cfg in baseline["configs"].items():
        cur = doc["configs"].get(config)
        if cur is None:
            print(f"MISSING  {config}: not measured", file=sys.stderr)
            failed = True
            continue
        ratio = cur["cells_per_s"] / cfg["cells_per_s"]
        status = "OK" if ratio >= 1.0 - max_regression else "REGRESSED"
        print(
            f"{status:>9}  {config}: {cur['cells_per_s']:,} cells/s vs "
            f"reference {cfg['cells_per_s']:,} ({ratio:.2f}x)",
            file=sys.stderr,
        )
        if status != "OK":
            failed = True
    status = "OK" if doc["speedup"] >= min_speedup else "REGRESSED"
    print(
        f"{status:>9}  speedup: {doc['speedup']:.1f}x "
        f"(floor {min_speedup:.1f}x)",
        file=sys.stderr,
    )
    if status != "OK":
        failed = True
    status = "OK" if doc["vec_speedup"] >= min_vec_speedup else "REGRESSED"
    print(
        f"{status:>9}  vec speedup: {doc['vec_speedup']:.2f}x "
        f"(floor {min_vec_speedup:.2f}x)",
        file=sys.stderr,
    )
    if status != "OK":
        failed = True
    status = "OK" if doc["batch_speedup"] >= min_batch_speedup else "REGRESSED"
    print(
        f"{status:>9}  batch speedup: {doc['batch_speedup']:.2f}x "
        f"(floor {min_batch_speedup:.2f}x)",
        file=sys.stderr,
    )
    if status != "OK":
        failed = True
    return 1 if failed else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--repeats", type=int, default=5, help="timed runs per backend"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="2 repeats (CI smoke mode)",
    )
    parser.add_argument(
        "--out", default=None, metavar="JSON", help="write results to file"
    )
    parser.add_argument(
        "--compare",
        default=None,
        metavar="JSON",
        help="reference BENCH_flow.json to gate cells/s against",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="tolerated fractional cells/s drop vs reference (default 0.25)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=5.0,
        help="minimum flow-over-packet speedup (default 5.0)",
    )
    parser.add_argument(
        "--min-batch-speedup",
        type=float,
        default=0.9,
        help=(
            "minimum batched-over-unbatched flow speedup (default 0.9: "
            "batching must not hurt on the serial reference workload, "
            "with headroom for timer noise at the grid's short walls)"
        ),
    )
    parser.add_argument(
        "--min-vec-speedup",
        type=float,
        default=1.5,
        help=(
            "minimum array-fabric speedup over the frozen object "
            "fabric (default 1.5, the CI floor under the 2x "
            "acceptance target of DESIGN.md S19)"
        ),
    )
    args = parser.parse_args(argv)

    repeats = 2 if args.quick else args.repeats
    doc = bench(repeats=repeats, warmup=1)

    if args.out:
        Path(args.out).write_text(json.dumps(doc, indent=2) + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        print(json.dumps(doc, indent=2))

    if args.compare:
        return compare(
            doc,
            Path(args.compare),
            args.max_regression,
            args.min_speedup,
            args.min_batch_speedup,
            args.min_vec_speedup,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
