"""Figure 8: AMG under uniform random background traffic.

(a) communication-time distribution per configuration, (b) local and
(c) global channel traffic CDFs of the routers serving AMG.

Paper findings encoded as shape assertions: localized configurations
(cont-min / cab-min) resist uniform background interference best, while
rand-adp suffers the most — adaptive routing lets background packets
detour through AMG's routers, and spread placement interleaves AMG's
messages with background traffic.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _common import interference_grid, save_report

import repro
from _common import bench_config, bench_seed, bench_trace
from repro.core.report import format_box_table, format_cdf_table


def test_fig8_amg_background(benchmark):
    grid = benchmark.pedantic(
        lambda: interference_grid("AMG", "uniform"), rounds=1, iterations=1
    )

    sections = [
        format_box_table(
            grid.comm_time_boxes("AMG"),
            "Figure 8(a) — AMG communication time under uniform random "
            "background",
            unit="ms",
        ),
        format_cdf_table(
            grid.traffic_cdf("AMG", "local"),
            "Figure 8(b) — AMG-router local channel traffic CDF",
            "MB",
        ),
        format_cdf_table(
            grid.traffic_cdf("AMG", "global"),
            "Figure 8(c) — AMG-router global channel traffic CDF",
            "MB",
        ),
    ]

    # Degradation factors vs the interference-free runs.
    alone = repro.run_single(
        bench_config(), bench_trace("AMG"), "cont", "min", seed=bench_seed()
    )
    shared = grid.get("AMG", "cont-min")
    degradation = (
        shared.metrics.median_comm_time_ns / alone.metrics.median_comm_time_ns
    )
    sections.append(
        f"cont-min degradation vs interference-free: {degradation:4.2f}x"
    )
    save_report("fig8_amg_background", "\n\n".join(sections))

    m = {label: grid.get("AMG", label).metrics for label in grid.labels()}
    meds = {label: x.median_comm_time_ns for label, x in m.items()}
    localized = min(meds["cont-min"], meds["cab-min"], meds["cont-adp"])
    # "cont-min and cab-min achieve less communication time among all
    # the placement and routing combinations under uniform random
    # background traffic"; spread placements with adaptive routing are
    # the worst (rand-adp / rotr-adp in our runs).
    assert localized <= min(meds.values()) * 1.05
    worst = max(meds, key=meds.get)  # type: ignore[arg-type]
    assert worst in ("rand-adp", "rotr-adp", "rand-min")
    assert meds["rand-adp"] > 1.5 * meds["cont-min"]
    # Minimal routing keeps background bytes off AMG's routers compared
    # with adaptive under spread placements.
    assert (
        m["rand-min"].total_local_traffic < m["rand-adp"].total_local_traffic
    )
    # Contiguous placement + minimal routing is nearly interference-free
    # (the paper's "isolated location on the shared network").
    assert degradation < 1.5
    assert (
        grid.get("AMG", "rand-adp").metrics.median_comm_time_ns
        > m["cont-min"].median_comm_time_ns
    )
