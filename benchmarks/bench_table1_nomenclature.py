"""Table I: nomenclature of placement and routing configurations.

Regenerates the paper's configuration grid (5 placements x 2 routings)
and benchmarks the cost of instantiating every policy pair — a sanity
baseline confirming configuration setup is negligible next to simulation.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _common import save_report

from repro.core.report import nomenclature_table
from repro.placement import PLACEMENT_NAMES, make_placement
from repro.routing import ROUTING_NAMES, make_routing


def build_grid():
    return [
        (make_placement(p), make_routing(r))
        for p in PLACEMENT_NAMES
        for r in ROUTING_NAMES
    ]


def test_table1_nomenclature(benchmark):
    grid = benchmark(build_grid)
    assert len(grid) == 10
    save_report("table1_nomenclature", nomenclature_table())
