"""Ablation: trace synchronisation and AMG's placement preference.

EXPERIMENTS.md documents the one shape divergence of this reproduction:
the paper measures AMG ~2.3% *faster* under contiguous placement, while
our perfectly level-synchronised synthetic AMG trace prefers balanced
placement — under lockstep, every rank's six halo messages hit the
contiguous block's local links in the same instant.

This ablation quantifies the mechanism at the scale where the
divergence appears (medium preset, 128 ranks): adding per-rank skew —
the natural desynchronisation a real BoomerAMG trace has — monotonically
closes the contiguous-vs-random gap (measured here: cont/rand ratio
1.24 at zero skew down to ~1.05 at 400 us skew).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _common import bench_config, bench_ranks, bench_seed, save_report

import repro
from repro.engine.rng import rng_stream
from repro.mpi.ops import Compute

SKEWS_NS = (0.0, 20_000.0, 100_000.0, 400_000.0)


def skewed_trace(skew_ns: float):
    trace = repro.amg_trace(num_ranks=bench_ranks(), seed=bench_seed())
    if skew_ns > 0:
        rng = rng_stream(bench_seed(), "ablation-skew", skew_ns)
        for rt in trace.ranks:
            rt.ops.insert(0, Compute(float(rng.uniform(0.0, skew_ns))))
    return trace


def run_matrix():
    cfg = bench_config()
    out = {}
    for skew in SKEWS_NS:
        trace = skewed_trace(skew)
        for placement in ("cont", "rand"):
            r = repro.run_single(
                cfg, trace, placement, "adp", seed=bench_seed(), compute_scale=1.0
            )
            out[(skew, placement)] = r.metrics.median_comm_time_ns / 1e6
    return out


def test_ablation_desync(benchmark):
    out = benchmark.pedantic(run_matrix, rounds=1, iterations=1)

    lines = ["Ablation — per-rank skew vs AMG placement gap (median ms, adp)"]
    lines.append(
        f"{'skew us':>8} {'cont-adp':>10} {'rand-adp':>10} {'cont/rand':>10}"
    )
    ratios = []
    for skew in SKEWS_NS:
        cont = out[(skew, "cont")]
        rand = out[(skew, "rand")]
        ratios.append(cont / rand)
        lines.append(
            f"{skew / 1e3:>8.0f} {cont:>10.4f} {rand:>10.4f} {cont / rand:>10.3f}"
        )
    save_report("ablation_desync", "\n".join(lines))

    # Skew softens the lockstep contention that penalises contiguous
    # placement: the cont/rand gap shrinks substantially by the largest
    # skew, and never widens along the way.
    assert ratios[-1] < ratios[0] - 0.05
    assert max(ratios) <= ratios[0] + 0.02
