"""DL-training workload generation/import throughput (the repro.mlcomms gate).

Times the two producer paths that every training study runs before any
simulation happens, interleaved A/B per repeat:

* ``generate``: build all four synthetic family members (DP ring
  all-reduce, PP 1F1B, TP layer exchange, MoE all-to-all) at the
  bench-standard size and report trace *operations per second* — the
  total per-rank op-list length over wall time. A training stream draws
  one of these per arriving job, so generation must stay a negligible
  slice of any study's wall time; ``--min-gen-rate`` (default 50k ops/s)
  is the acceptance floor.
* ``import``: parse and lower a synthesized param-style comms-trace
  document (records pre-serialised to JSON once at setup) and report
  *records per second* through :func:`repro.mlcomms.traceio.parse_comms_trace`
  including JSON decode — the commsTraceReplay ingestion path.

Usage::

    python benchmarks/bench_mlcomms.py                   # full run
    python benchmarks/bench_mlcomms.py --quick           # CI smoke
    python benchmarks/bench_mlcomms.py --out BENCH.json
    python benchmarks/bench_mlcomms.py --quick \\
        --compare BENCH_mlcomms.json --max-regression 0.5

``--compare`` exits non-zero when any configuration's rate falls more
than ``--max-regression`` below the reference file, or the measured
generation rate drops under ``--min-gen-rate``.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time
from pathlib import Path

from repro.mlcomms.generators import (
    dp_allreduce_trace,
    moe_alltoall_trace,
    pp_1f1b_trace,
    tp_layer_trace,
)
from repro.mlcomms.traceio import parse_comms_trace

#: Versioned result-file schema.
SCHEMA = "repro-bench-mlcomms/v1"

#: Scenario parameters. ``ranks``/``iterations`` size the generated
#: jobs well above the tiny-preset test instances so per-call overhead
#: does not dominate; ``import_records`` sizes the synthetic document
#: the import path parses per repeat.
SCENARIO = {
    "ranks": 32,
    "iterations": 4,
    "seed": 11,
    "import_ranks": 16,
    "import_records": 400,
}

CONFIGS = ("generate", "import")

GENERATORS = (
    dp_allreduce_trace,
    pp_1f1b_trace,
    tp_layer_trace,
    moe_alltoall_trace,
)


def _setup() -> dict:
    """Pre-serialise the import document so repeats time parse+lower only."""
    records = []
    for i in range(SCENARIO["import_records"] // 4):
        records.append({"comms": "all_reduce", "in_msg_size": 8192,
                        "dtype": "float32"})
        records.append({"comms": "all_gather", "in_msg_size": 2048})
        records.append({"comms": "all_to_all", "in_msg_size": 4096})
        records.append({"marker": f"iteration_{i}"})
    doc = {
        "name": "bench",
        "num_ranks": SCENARIO["import_ranks"],
        "trace": records,
    }
    return {"import_json": json.dumps(doc)}


def _generate_once(ctx: dict) -> tuple[float, int]:
    """Time one full-family generation pass; count emitted trace ops."""
    t0 = time.perf_counter()
    ops = 0
    for gen in GENERATORS:
        job = gen(
            num_ranks=SCENARIO["ranks"],
            iterations=SCENARIO["iterations"],
            seed=SCENARIO["seed"],
        )
        ops += sum(len(rt) for rt in job.ranks)
    return time.perf_counter() - t0, ops


def _import_once(ctx: dict) -> tuple[float, int]:
    """Time one decode+parse+lower pass over the synthetic document."""
    t0 = time.perf_counter()
    doc = json.loads(ctx["import_json"])
    job = parse_comms_trace(doc)
    assert job.num_ranks == SCENARIO["import_ranks"]
    return time.perf_counter() - t0, len(doc["trace"])


RUNNERS = {"generate": _generate_once, "import": _import_once}


def bench(repeats: int, warmup: int = 1) -> dict:
    """Time every configuration A/B-interleaved; return the result doc."""
    ctx = _setup()
    times: dict[str, list[float]] = {c: [] for c in CONFIGS}
    counts: dict[str, int] = {c: 0 for c in CONFIGS}
    for config in CONFIGS:
        for _ in range(warmup):
            RUNNERS[config](ctx)
    for rep in range(repeats):
        for config in CONFIGS:  # interleaved: generate, import, ...
            wall, n = RUNNERS[config](ctx)
            times[config].append(wall)
            counts[config] = n
            print(
                f"rep {rep + 1}/{repeats} {config:>9}: {wall:.4f}s "
                f"({n / wall:,.0f}/s)",
                file=sys.stderr,
            )
    configs = {}
    for config, walls in times.items():
        mean = statistics.mean(walls)
        configs[config] = {
            "mean_s": round(mean, 5),
            "stdev_s": round(
                statistics.stdev(walls) if len(walls) > 1 else 0.0, 5
            ),
            "min_s": round(min(walls), 5),
            "repeats": repeats,
            "items": counts[config],
            "rate_per_s": round(counts[config] / mean, 1),
        }
    gen_rate = configs["generate"]["rate_per_s"]
    import_rate = configs["import"]["rate_per_s"]
    print(f"generation rate: {gen_rate:,.0f} trace ops/s", file=sys.stderr)
    print(f"import rate: {import_rate:,.0f} records/s", file=sys.stderr)
    return {
        "schema": SCHEMA,
        "scenario": SCENARIO,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "configs": configs,
        "gen_rate": gen_rate,
        "import_rate": import_rate,
    }


def compare(
    doc: dict,
    ref_path: Path,
    max_regression: float,
    min_gen_rate: float,
) -> int:
    """Gate ``doc`` against a reference file; returns the exit code."""
    ref = json.loads(ref_path.read_text())
    baseline = ref.get("after", ref)  # PR files keep before/after blocks
    if baseline.get("schema") != SCHEMA:
        print(f"schema mismatch in {ref_path}, skipping gate", file=sys.stderr)
        return 0
    failed = False
    for config, cfg in baseline["configs"].items():
        cur = doc["configs"].get(config)
        if cur is None:
            print(f"MISSING  {config}: not measured", file=sys.stderr)
            failed = True
            continue
        ratio = cur["rate_per_s"] / cfg["rate_per_s"]
        status = "OK" if ratio >= 1.0 - max_regression else "REGRESSED"
        print(
            f"{status:>9}  {config}: {cur['rate_per_s']:,}/s vs "
            f"reference {cfg['rate_per_s']:,}/s ({ratio:.2f}x)",
            file=sys.stderr,
        )
        if status != "OK":
            failed = True
    status = "OK" if doc["gen_rate"] >= min_gen_rate else "REGRESSED"
    print(
        f"{status:>9}  generation rate: {doc['gen_rate']:,.0f} ops/s "
        f"(floor {min_gen_rate:,.0f}/s)",
        file=sys.stderr,
    )
    if status != "OK":
        failed = True
    return 1 if failed else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--repeats", type=int, default=5, help="timed runs per configuration"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="2 repeats (CI smoke mode)",
    )
    parser.add_argument(
        "--out", default=None, metavar="JSON", help="write results to file"
    )
    parser.add_argument(
        "--compare",
        default=None,
        metavar="JSON",
        help="reference BENCH_mlcomms.json to gate rates against",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.5,
        help=(
            "tolerated fractional rate drop vs reference (default 0.5: "
            "both paths are sub-second pure-python walls, so shared-"
            "runner noise is proportionally large)"
        ),
    )
    parser.add_argument(
        "--min-gen-rate",
        type=float,
        default=50_000.0,
        help=(
            "minimum generated trace ops per second (default 50000, the "
            "DESIGN.md S21 acceptance floor)"
        ),
    )
    args = parser.parse_args(argv)

    repeats = 2 if args.quick else args.repeats
    doc = bench(repeats=repeats, warmup=1)

    if args.out:
        Path(args.out).write_text(json.dumps(doc, indent=2) + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        print(json.dumps(doc, indent=2))

    if args.compare:
        return compare(
            doc,
            Path(args.compare),
            args.max_regression,
            args.min_gen_rate,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
