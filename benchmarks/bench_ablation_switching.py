"""Ablation: virtual cut-through vs store-and-forward switching.

DESIGN.md §3 models links as packet-granular with VCT by default (like
the flit-level CODES). This ablation quantifies what the switching mode
does to the locality trade-off: store-and-forward charges a full
serialisation per hop, inflating the cost of random placement's longer
paths and thereby *overstating* the value of localized communication.
"""

import dataclasses
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _common import bench_seed, save_report

import repro


def run_matrix():
    # Light load: the latency-dominated regime where switching mode
    # directly prices path length (heavy loads mix in queueing effects
    # that can mask it).
    base = repro.small().with_seed(bench_seed())
    trace = repro.crystal_router_trace(num_ranks=32, seed=bench_seed()).scaled(0.02)
    out = {}
    for mode in ("vct", "store_forward"):
        cfg = dataclasses.replace(
            base, network=dataclasses.replace(base.network, switching=mode)
        )
        for placement in ("cont", "rand"):
            r = repro.run_single(cfg, trace, placement, "min", seed=bench_seed())
            out[(mode, placement)] = r.metrics.median_comm_time_ns / 1e6
    return out


def test_ablation_switching(benchmark):
    out = benchmark.pedantic(run_matrix, rounds=1, iterations=1)

    lines = ["Ablation — switching mode (CR at 2% load, small preset, ms)"]
    lines.append(f"{'mode':<15} {'cont-min':>10} {'rand-min':>10} {'rand/cont':>10}")
    for mode in ("vct", "store_forward"):
        cont = out[(mode, "cont")]
        rand = out[(mode, "rand")]
        lines.append(f"{mode:<15} {cont:>10.4f} {rand:>10.4f} {rand / cont:>10.3f}")
    save_report("ablation_switching", "\n".join(lines))

    # Store-and-forward penalises the longer random-placement paths
    # more: the rand/cont ratio is larger than under cut-through.
    vct_ratio = out[("vct", "rand")] / out[("vct", "cont")]
    sf_ratio = out[("store_forward", "rand")] / out[("store_forward", "cont")]
    assert sf_ratio > vct_ratio
    # Cut-through is never slower than store-and-forward.
    for placement in ("cont", "rand"):
        assert out[("vct", placement)] <= out[("store_forward", placement)]
