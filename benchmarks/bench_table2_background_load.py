"""Table II: peak background traffic load on the network.

Computes the peak load (total message load among all background ranks
per interval) of the uniform-random and bursty patterns used in the
Figure 8-10 benches, alongside the paper's Theta-scale values for
comparison of the *structure* (uniform loads equal across apps; bursty
loads orders of magnitude larger, CR's burst the largest).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _common import background_specs, bench_config, bench_ranks, save_report

from repro.core.interference import background_load_table

#: Paper Table II (Theta scale), for side-by-side shape comparison.
PAPER_TABLE2 = {
    "CR": (38.38, 92.00),
    "FB": (38.38, 5.75),
    "AMG": (27.00, 2.85),
}


def compute_rows():
    cfg = bench_config()
    specs = {app: background_specs(app) for app in ("CR", "FB", "AMG")}
    bg_nodes = {
        app: cfg.topology.num_nodes - bench_ranks() for app in ("CR", "FB", "AMG")
    }
    return background_load_table(specs, bg_nodes)


def test_table2_background_load(benchmark):
    rows = benchmark(compute_rows)

    lines = [
        "Table II — Peak Background Traffic Load on the Network",
        f"{'App':<5} {'Uniform (MB)':>14} {'Bursty (GB)':>13}"
        f" {'paper uniform':>14} {'paper bursty':>13}",
    ]
    for app, uniform_mb, bursty_gb in rows:
        pu, pb = PAPER_TABLE2[app]
        lines.append(
            f"{app:<5} {uniform_mb:>14.3f} {bursty_gb:>13.4f} {pu:>14.2f} {pb:>13.2f}"
        )
    save_report("table2_background_load", "\n".join(lines))

    by_app = {app: (u, b) for app, u, b in rows}
    # Structure matches the paper: uniform per-interval loads are equal
    # across target apps; bursty loads dwarf uniform ones; CR's bursty
    # load is the largest (full fanout).
    assert by_app["CR"][0] == by_app["FB"][0] == by_app["AMG"][0]
    for app in by_app:
        assert by_app[app][1] * 1e3 > by_app[app][0]  # GB vs MB
    assert by_app["CR"][1] > by_app["FB"][1] > by_app["AMG"][1]
