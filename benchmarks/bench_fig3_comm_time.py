"""Figure 3: communication-time distributions under 10 configurations.

For each application (CR, FB, AMG), replays the app alone under every
placement x routing combination and reports the five-number box data of
per-rank communication times — the paper's Figure 3(a-c).

Shape assertions encode the paper's findings: CR and FB benefit from
balanced traffic (random-node placement), AMG from localized
communication (contiguous placement); FB and AMG prefer adaptive
routing.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _common import app_grid, save_report

from repro.core.report import format_box_table, key_findings


def test_fig3_comm_time(benchmark):
    grids = benchmark.pedantic(
        lambda: {app: app_grid(app) for app in ("CR", "FB", "AMG")},
        rounds=1,
        iterations=1,
    )

    sections = []
    for app, grid in grids.items():
        sections.append(
            format_box_table(
                grid.comm_time_boxes(app),
                f"Figure 3({'abc'[list(grids).index(app)]}) — {app} "
                "communication time",
                unit="ms",
            )
        )
        findings = key_findings(grid)[app]
        sections.append(
            f"  best={findings['best']}  "
            f"rand-vs-cont={findings['rand_vs_cont_pct']:+.1f}%  "
            f"cont-vs-rand={findings['cont_vs_rand_pct']:+.1f}%"
        )
    save_report("fig3_comm_time", "\n\n".join(sections))

    # Paper findings (Section IV-A):
    cr, fb, amg = grids["CR"], grids["FB"], grids["AMG"]
    # "CR and FB benefit from balanced network traffic" — random-node
    # beats contiguous under the app's preferred routing.
    assert cr.improvement_pct("CR", "rand-min", "cont-min", stat="max") > 0
    assert fb.improvement_pct("FB", "rand-adp", "cont-adp", stat="max") >= -2.0
    # "FB and AMG prefer adaptive routing".
    assert fb.improvement_pct("FB", "cont-adp", "cont-min") > 0
    assert amg.improvement_pct("AMG", "cont-adp", "cont-min") > 0
    # AMG's configurations sit in a tight band (the paper's effects for
    # AMG are a few percent). NOTE: the paper's +2.3% preference for
    # contiguous placement inverts in this simulator — our synthetic
    # AMG trace is perfectly level-synchronised, so contiguous
    # placement pays lockstep micro-burst contention that the real
    # (naturally skewed) trace does not; see EXPERIMENTS.md.
    amg_meds = [
        amg._stat("AMG", label, "median") for label in amg.labels()
    ]
    assert max(amg_meds) / min(amg_meds) < 2.5
