"""Figure 10: FB under uniform random and bursty background traffic.

(a) communication time under uniform random background, (b) under
bursty background, (c) local channel traffic CDF of FB's routers under
the bursty pattern.

Paper findings: like CR, FB tolerates uniform random background but
degrades under bursty background (less than CR); contiguous and
random-cabinet placements vary least.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _common import bench_config, bench_seed, bench_trace, interference_grid, save_report

import repro
from repro.core.report import format_box_table, format_cdf_table


def run_all():
    return {
        "uniform": interference_grid("FB", "uniform"),
        "bursty": interference_grid("FB", "bursty"),
    }


def test_fig10_fb_background(benchmark):
    grids = benchmark.pedantic(run_all, rounds=1, iterations=1)

    sections = [
        format_box_table(
            grids["uniform"].comm_time_boxes("FB"),
            "Figure 10(a) — FB communication time, uniform random background",
            unit="ms",
        ),
        format_box_table(
            grids["bursty"].comm_time_boxes("FB"),
            "Figure 10(b) — FB communication time, bursty background",
            unit="ms",
        ),
        format_cdf_table(
            grids["bursty"].traffic_cdf("FB", "local"),
            "Figure 10(c) — FB-router local channel traffic CDF (bursty)",
            "MB",
        ),
    ]

    alone = repro.run_single(
        bench_config(), bench_trace("FB"), "cont", "min", seed=bench_seed()
    ).metrics.median_comm_time_ns
    u = grids["uniform"].get("FB", "cont-min").metrics.median_comm_time_ns
    b = grids["bursty"].get("FB", "cont-min").metrics.median_comm_time_ns
    sections.append(
        f"cont-min degradation vs interference-free: uniform {u / alone:4.2f}x  "
        f"bursty {b / alone:4.2f}x"
    )
    save_report("fig10_fb_background", "\n\n".join(sections))

    # FB "does not suffer much performance degradation under uniform
    # random background traffic".
    assert u / alone < 2.0
    # Under bursty background, localized placements vary least: the
    # spread (max-min across ranks) of cont-min stays below rand-adp's.
    spread = {}
    for label in ("cont-min", "rand-adp"):
        ct = grids["bursty"].get("FB", label).metrics.comm_time_ns
        spread[label] = float(ct.max() - ct.min())
    assert spread["cont-min"] <= spread["rand-adp"] * 1.5
