"""Shared setup for the per-figure/per-table benchmark harness.

Every benchmark regenerates one table or figure of the paper at a scaled
configuration (see DESIGN.md §4: a pure-Python event simulator cannot
replay Theta-scale traces in benchmark time; congestion behaviour is
preserved by scaling the machine and the message loads together).

Environment knobs:

* ``REPRO_BENCH_PRESET`` — ``tiny`` / ``small`` (default) / ``medium`` /
  ``theta``: machine size.
* ``REPRO_BENCH_RANKS``  — application rank count (default per preset).
* ``REPRO_BENCH_SEED``   — experiment seed (default 1).

Each benchmark writes its paper-style text rendering to
``benchmarks/results/<name>.txt`` so the regenerated rows/series survive
pytest's output capture.
"""

from __future__ import annotations

import os
from pathlib import Path

import repro
from repro.config import SimulationConfig

RESULTS_DIR = Path(__file__).parent / "results"

_PRESETS = {
    "tiny": repro.tiny,
    "small": repro.small,
    "medium": repro.medium,
    "theta": repro.theta,
}

#: Default application rank count per machine preset (~30-40% of nodes,
#: mirroring the paper's 1000-of-3456 ratio).
_DEFAULT_RANKS = {"tiny": 8, "small": 32, "medium": 128, "theta": 1000}

#: Message-size scale per app, tuned so the default (*medium*) preset
#: reproduces the paper's congestion regimes in benchmark-friendly
#: time. The ratios between apps preserve the paper's intensity
#: ordering (AMG < CR < FB).
APP_SCALES = {"CR": 1.0, "FB": 0.05, "AMG": 1.0}

_BUILDERS = {
    "CR": repro.crystal_router_trace,
    "FB": repro.fill_boundary_trace,
    "AMG": repro.amg_trace,
}


def preset_name() -> str:
    return os.environ.get("REPRO_BENCH_PRESET", "medium")


def bench_config() -> SimulationConfig:
    return _PRESETS[preset_name()]().with_seed(bench_seed())


def bench_ranks() -> int:
    env = os.environ.get("REPRO_BENCH_RANKS")
    return int(env) if env else _DEFAULT_RANKS[preset_name()]


def bench_seed() -> int:
    return int(os.environ.get("REPRO_BENCH_SEED", "1"))


def bench_trace(app: str, extra_scale: float = 1.0):
    """The app's trace at the benchmark's machine-appropriate load."""
    trace = _BUILDERS[app](num_ranks=bench_ranks(), seed=bench_seed())
    scale = APP_SCALES[app] * extra_scale
    return trace.scaled(scale) if scale != 1.0 else trace


def background_specs(app: str) -> dict:
    """The Section IV-C background-traffic specs, at bench scale.

    The paper drives the synthetic job with ~16 KB per-node messages:
    uniform-random at small intervals (0.002-1 ms) and bursty blasts at
    large intervals (0.1-60 ms). The per-interval loads in Table II are
    similar across target apps, but the *interval* differs hugely — the
    AMG experiment's background is orders of magnitude more intense per
    unit time, which is what exposes AMG's sensitivity while CR/FB show
    "no obvious performance variation" under uniform background. We
    keep that structure: one 16 KB message per node per interval, with
    a short interval for the AMG study and a long one for CR/FB, and
    synchronised bursts whose fanout ordering (CR > FB > AMG) mirrors
    Table II's bursty loads.
    """
    from repro.core.interference import BackgroundSpec

    uniform_interval = {"CR": 50_000.0, "FB": 50_000.0, "AMG": 2_000.0}[app]
    uniform = BackgroundSpec(
        "uniform", message_bytes=16_384, interval_ns=uniform_interval
    )
    fanout = {"CR": 24, "FB": 12, "AMG": 8}[app]
    bursty = BackgroundSpec(
        "bursty", message_bytes=32_768, interval_ns=500_000.0, fanout=fanout
    )
    return {"uniform": uniform, "bursty": bursty}


def interference_grid(app: str, pattern: str):
    """Placement x routing grid for `app` under background traffic."""
    from repro.core.interference import interference_study

    key = ("bg", app, pattern, preset_name(), bench_ranks(), bench_seed())
    if key not in _GRID_CACHE:
        _GRID_CACHE[key] = interference_study(
            bench_config(),
            bench_trace(app),
            background_specs(app)[pattern],
            seed=bench_seed(),
        )
    return _GRID_CACHE[key]


_GRID_CACHE: dict[tuple, object] = {}


def app_grid(app: str):
    """The full 10-configuration study for one app (memoised per session).

    Figure 3 and Figures 4-6 all draw on the same grid; running it once
    per pytest session keeps the benchmark suite's wall time dominated
    by distinct experiments rather than repeats.
    """
    from repro.core.study import TradeoffStudy

    key = (app, preset_name(), bench_ranks(), bench_seed())
    if key not in _GRID_CACHE:
        study = TradeoffStudy(
            bench_config(), {app: bench_trace(app)}, seed=bench_seed()
        )
        _GRID_CACHE[key] = study.run()
    return _GRID_CACHE[key]


def save_report(name: str, text: str) -> Path:
    """Persist a figure/table rendering under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    header = (
        f"# {name} — preset={preset_name()} ranks={bench_ranks()} "
        f"seed={bench_seed()}\n"
    )
    path.write_text(header + text + "\n")
    print(text)
    return path
