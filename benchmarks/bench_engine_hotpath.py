"""Engine hot-path throughput benchmark (the repro.perf gate).

Times the tiny-preset 5x2 placement x routing grid — the golden-metrics
scenario, serial, cache off — under every scheduler with observability
off and on, and reports wall-clock mean/stdev plus event throughput.
This is the workload the PR-level speedup claims in ``BENCH_engine.json``
are measured on, and the CI perf smoke gate compares against.

Usage::

    python benchmarks/bench_engine_hotpath.py                   # full run
    python benchmarks/bench_engine_hotpath.py --quick           # CI smoke
    python benchmarks/bench_engine_hotpath.py --out BENCH.json
    python benchmarks/bench_engine_hotpath.py --quick \\
        --compare BENCH_engine.json --max-regression 0.20

``--compare`` exits non-zero when any configuration's events/s fall more
than ``--max-regression`` below the reference file's ``after`` numbers —
a wide gate by design: it catches accidental hot-path regressions, not
machine-to-machine noise.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time
from pathlib import Path

import repro
from repro.core.study import TradeoffStudy
from repro.engine.queues import SCHEDULER_NAMES
from repro.obs import ObsConfig

#: Versioned result-file schema.
SCHEMA = "repro-bench-engine/v1"

#: The golden-metrics scenario (tests/integration/test_golden_metrics.py).
SCENARIO = {
    "preset": "tiny",
    "app": "FB",
    "ranks": 8,
    "trace_seed": 3,
    "msg_scale": 0.05,
    "study_seed": 7,
}


def _grid_once(scheduler: str, obs: bool) -> tuple[float, int]:
    """One full 5x2 grid run; returns (wall seconds, total events)."""
    cfg = repro.tiny()
    trace = repro.fill_boundary_trace(
        num_ranks=SCENARIO["ranks"], seed=SCENARIO["trace_seed"]
    ).scaled(SCENARIO["msg_scale"])
    kwargs = {"obs": ObsConfig()} if obs else {}
    t0 = time.perf_counter()
    result = TradeoffStudy(
        cfg,
        {SCENARIO["app"]: trace},
        seed=SCENARIO["study_seed"],
        scheduler=scheduler,
        **kwargs,
    ).run()
    wall = time.perf_counter() - t0
    events = sum(run.events for run in result.runs.values())
    return wall, events


def bench(repeats: int, warmup: int = 1) -> dict:
    """Time every (scheduler, obs) configuration; return the result doc."""
    configs = {}
    for scheduler in SCHEDULER_NAMES:
        for obs in (False, True):
            label = f"{scheduler}/{'obs_on' if obs else 'obs_off'}"
            for _ in range(warmup):
                _grid_once(scheduler, obs)
            times = []
            events = 0
            for _ in range(repeats):
                wall, events = _grid_once(scheduler, obs)
                times.append(wall)
            mean = statistics.mean(times)
            configs[label] = {
                "mean_s": round(mean, 4),
                "stdev_s": round(
                    statistics.stdev(times) if len(times) > 1 else 0.0, 4
                ),
                "min_s": round(min(times), 4),
                "repeats": repeats,
                "events": events,
                "events_per_s": round(events / mean),
            }
            print(
                f"{label:>18}: {mean:.4f}s +- {configs[label]['stdev_s']:.4f} "
                f"({configs[label]['events_per_s']:,} ev/s)",
                file=sys.stderr,
            )
    return {
        "schema": SCHEMA,
        "scenario": SCENARIO,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "configs": configs,
    }


def compare(doc: dict, ref_path: Path, max_regression: float) -> int:
    """Gate ``doc`` against a reference file; returns the exit code."""
    ref = json.loads(ref_path.read_text())
    baseline = ref.get("after", ref)  # PR files keep before/after blocks
    if baseline.get("schema") != SCHEMA:
        print(f"schema mismatch in {ref_path}, skipping gate", file=sys.stderr)
        return 0
    failed = False
    for label, cfg in baseline["configs"].items():
        cur = doc["configs"].get(label)
        if cur is None:
            print(f"MISSING  {label}: not measured", file=sys.stderr)
            failed = True
            continue
        ratio = cur["events_per_s"] / cfg["events_per_s"]
        status = "OK" if ratio >= 1.0 - max_regression else "REGRESSED"
        print(
            f"{status:>9}  {label}: {cur['events_per_s']:,} ev/s vs "
            f"reference {cfg['events_per_s']:,} ({ratio:.2f}x)",
            file=sys.stderr,
        )
        if status != "OK":
            failed = True
    return 1 if failed else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--repeats", type=int, default=5, help="timed runs per config"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="2 repeats, no warmup discard (CI smoke mode)",
    )
    parser.add_argument(
        "--out", default=None, metavar="JSON", help="write results to file"
    )
    parser.add_argument(
        "--compare",
        default=None,
        metavar="JSON",
        help="reference BENCH_engine.json to gate events/s against",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.20,
        help="tolerated fractional events/s drop vs reference (default 0.20)",
    )
    args = parser.parse_args(argv)

    repeats = 2 if args.quick else args.repeats
    doc = bench(repeats=repeats, warmup=1)

    if args.out:
        Path(args.out).write_text(json.dumps(doc, indent=2) + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        print(json.dumps(doc, indent=2))

    if args.compare:
        return compare(doc, Path(args.compare), args.max_regression)
    return 0


if __name__ == "__main__":
    sys.exit(main())
