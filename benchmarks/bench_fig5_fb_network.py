"""Figure 5: FB channel traffic and link saturation.

(a) local channel traffic CDF, (b) local link saturation CDF,
(c) global channel traffic CDF, (d) global link saturation CDF —
for all 10 placement x routing configurations.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _common import app_grid, save_report

from repro.core.report import format_cdf_table


def test_fig5_fb_network(benchmark):
    grid = benchmark.pedantic(lambda: app_grid("FB"), rounds=1, iterations=1)

    sections = [
        format_cdf_table(
            grid.traffic_cdf("FB", "local"),
            "Figure 5(a) — FB local channel traffic CDF",
            "MB",
        ),
        format_cdf_table(
            grid.saturation_cdf("FB", "local"),
            "Figure 5(b) — FB local link saturation CDF",
            "ms",
        ),
        format_cdf_table(
            grid.traffic_cdf("FB", "global"),
            "Figure 5(c) — FB global channel traffic CDF",
            "MB",
        ),
        format_cdf_table(
            grid.saturation_cdf("FB", "global"),
            "Figure 5(d) — FB global link saturation CDF",
            "ms",
        ),
    ]
    save_report("fig5_fb_network", "\n\n".join(sections))

    m = {label: grid.get("FB", label).metrics for label in grid.labels()}
    # cont-min clusters traffic on few channels -> worst local saturation;
    # FB's best config balances traffic (rand + adp).
    assert m["cont-min"].total_local_sat_ns >= m["cont-adp"].total_local_sat_ns
    best = grid.best_label("FB", stat="max")
    assert best.endswith("adp")
    # Random placement moves load onto global channels.
    assert m["rand-min"].total_global_traffic > m["cont-min"].total_global_traffic
