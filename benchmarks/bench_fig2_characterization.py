"""Figure 2: application communication matrices and message load per rank.

Top row (a-c): the rank-to-rank communication matrix of CR, FB, AMG.
Bottom row (d-f): average message load per rank over time, measured by
replaying each application alone under cont-min and recording send
events (CR steady ~target load, FB strongly fluctuating, AMG three
surges).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _common import bench_config, bench_seed, bench_trace, save_report

import repro
from repro.metrics.analysis import load_timeline


def characterize(app):
    trace = bench_trace(app)
    mat = trace.communication_matrix()
    result = repro.run_single(
        bench_config(), trace, "cont", "min", seed=bench_seed(), record_sends=True
    )
    centers, loads = load_timeline(
        result.job.send_events, trace.num_ranks, num_bins=24
    )
    return trace, mat, centers, loads


def render(app, trace, mat, centers, loads):
    lines = [f"Figure 2 — {app} characterization"]
    partners = (mat > 0).sum(axis=1)
    lines.append(
        f"  ranks={trace.num_ranks}  messages={trace.num_messages()}  "
        f"total={trace.total_bytes() / 1e6:.2f} MB"
    )
    lines.append(
        f"  avg load/rank={trace.avg_message_load_per_rank() / 1e3:.1f} KB  "
        f"partners/rank min/mean/max={partners.min()}/{partners.mean():.1f}/{partners.max()}"
    )
    near = sum(
        mat[i, j]
        for i in range(len(mat))
        for j in range(len(mat))
        if 0 < min((i - j) % len(mat), (j - i) % len(mat)) <= 2
    )
    lines.append(f"  near-diagonal traffic share={near / max(mat.sum(), 1):.2f}")
    lines.append("  message load per rank over time (KB per bin):")
    if len(loads):
        peak = loads.max()
        for c, v in zip(centers, loads):
            bar = "#" * int(40 * v / peak) if peak else ""
            lines.append(f"    t={c / 1e6:8.3f} ms  {v / 1e3:9.2f} KB {bar}")
    return "\n".join(lines)


def test_fig2_characterization(benchmark):
    results = benchmark.pedantic(
        lambda: {app: characterize(app) for app in ("CR", "FB", "AMG")},
        rounds=1,
        iterations=1,
    )
    text = "\n\n".join(render(app, *results[app]) for app in results)
    save_report("fig2_characterization", text)

    # Shape assertions from the paper's characterisation.
    cr_mat = results["CR"][1]
    amg_mat = results["AMG"][1]
    # AMG is regional: far fewer partner pairs than CR's many-to-many.
    assert (amg_mat > 0).sum() < (cr_mat > 0).sum()
    # FB is the heaviest, AMG the lightest (per rank).
    loads = {
        app: results[app][0].avg_message_load_per_rank()
        for app in ("CR", "FB", "AMG")
    }
    assert loads["AMG"] < loads["CR"] < loads["FB"]
