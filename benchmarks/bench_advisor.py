"""Placement-advisor funnel throughput benchmark (the repro.advisor gate).

Times the two tiers whose cost model the funnel's design rests on,
interleaved A/B per repeat, cache off:

* ``surrogate_rank`` (tier 1): featurize and score every enumerated
  candidate placement with the fitted ridge surrogate — exactly the
  work :func:`repro.advisor.suggest_placement` does before any
  simulation, including per-job :class:`FeatureExtractor` construction.
  The funnel's reach claim ("ranks thousands of candidates per
  second") is gated here: ``--min-rank-rate`` (default 1000/s) is the
  DESIGN.md S20 acceptance floor.
* ``flow_screen`` (tier 2): run the funnel with packet validation
  disabled and no result cache, so every repeat simulates its
  ``screen_top`` flow cells from scratch; reports grid cells per
  second of the screening tier. This is the per-candidate cost the
  surrogate tier exists to amortise — the ratio of the two rates is
  the funnel's leverage.

The surrogate is trained fresh at startup from a real study grid
(3 apps x 5 placements x 2 routings on the tiny preset, flow backend)
written into a temporary cache — the same pipeline CI's advisor-smoke
job runs, so the timed prediction path uses genuine model weights, not
synthetic ones.

Usage::

    python benchmarks/bench_advisor.py                   # full run
    python benchmarks/bench_advisor.py --quick           # CI smoke
    python benchmarks/bench_advisor.py --out BENCH.json
    python benchmarks/bench_advisor.py --quick \\
        --compare BENCH_advisor.json --max-regression 0.35

``--compare`` exits non-zero when any configuration's rate falls more
than ``--max-regression`` below the reference file, or the measured
surrogate ranking rate drops under ``--min-rank-rate``.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

import repro
from repro.advisor import suggest_placement, train_surrogate
from repro.advisor.features import FeatureExtractor, enumerate_candidates
from repro.apps import APP_BUILDERS
from repro.exec.cache import ResultCache
from repro.exec.plan import plan_grid
from repro.exec.pool import execute_plan
from repro.placement.policies import PLACEMENT_NAMES

#: Versioned result-file schema.
SCHEMA = "repro-bench-advisor/v1"

#: Scenario parameters: the tiny-preset fill-boundary workload at the
#: bench-standard message scale (the same job the CI advisor-smoke
#: funnel recommends for). ``rank_per_policy`` draws a large candidate
#: pool for tier 1 — random-heavy policies keep drawing distinct node
#: sets, so the surrogate sees hundreds of rows per prediction, the
#: regime the rate claim is about. ``screen_top``/``screen_per_policy``
#: bound the (much slower) flow tier to a handful of cells per repeat.
SCENARIO = {
    "preset": "tiny",
    "app": "FB",
    "ranks": 8,
    "trace_seed": 7,
    "msg_scale": 0.2,
    "train_seed": 7,
    "funnel_seed": 3,
    "routing": "adp",
    "rank_per_policy": 100,
    "screen_per_policy": 3,
    "screen_top": 8,
}

CONFIGS = ("surrogate_rank", "flow_screen")


def _setup() -> dict:
    """Build the shared bench context: config, trace, trained model."""
    cfg = getattr(repro, SCENARIO["preset"])()
    traces = {
        app: APP_BUILDERS[app](
            num_ranks=SCENARIO["ranks"], seed=SCENARIO["trace_seed"]
        ).scaled(SCENARIO["msg_scale"])
        for app in APP_BUILDERS
    }
    with tempfile.TemporaryDirectory(prefix="bench-advisor-") as tmp:
        cache = ResultCache(tmp)
        plan = plan_grid(
            cfg,
            traces,
            PLACEMENT_NAMES,
            ("min", "adp"),
            seed=SCENARIO["train_seed"],
            backend="flow",
        )
        execute_plan(plan, cache=cache).raise_if_failed()
        model, training = train_surrogate(cfg, traces, cache)
    print(
        f"trained surrogate on {training.n_samples} cached results "
        f"(R^2={model.score(training.features, training.targets):.3f})",
        file=sys.stderr,
    )
    candidates = enumerate_candidates(
        cfg,
        SCENARIO["ranks"],
        per_policy=SCENARIO["rank_per_policy"],
        seed=SCENARIO["funnel_seed"],
    )
    return {
        "config": cfg,
        "trace": traces[SCENARIO["app"]],
        "model": model,
        "candidates": candidates,
    }


def _rank_once(ctx: dict) -> tuple[float, int]:
    """Time one tier-1 pass: extractor build, featurize, score, sort."""
    t0 = time.perf_counter()
    fx = FeatureExtractor(ctx["config"], ctx["trace"], SCENARIO["routing"])
    predictions = ctx["model"].predict(fx.matrix(ctx["candidates"]))
    np.argsort(predictions, kind="stable")
    return time.perf_counter() - t0, len(ctx["candidates"])


def _screen_once(ctx: dict) -> tuple[float, int]:
    """Time the funnel's flow tier, cache off (every cell simulated)."""
    result = suggest_placement(
        ctx["config"],
        ctx["trace"],
        SCENARIO["routing"],
        ctx["model"],
        per_policy=SCENARIO["screen_per_policy"],
        screen_top=SCENARIO["screen_top"],
        validate_top=0,
        seed=SCENARIO["funnel_seed"],
        cache=None,
    )
    (tier,) = [t for t in result.tiers if t.name == "flow-screen"]
    assert tier.simulated == tier.candidates  # cache off: nothing served
    return tier.wall_s, tier.candidates


RUNNERS = {"surrogate_rank": _rank_once, "flow_screen": _screen_once}


def bench(repeats: int, warmup: int = 1) -> dict:
    """Time every configuration A/B-interleaved; return the result doc."""
    ctx = _setup()
    times: dict[str, list[float]] = {c: [] for c in CONFIGS}
    counts: dict[str, int] = {c: 0 for c in CONFIGS}
    for config in CONFIGS:
        for _ in range(warmup):
            RUNNERS[config](ctx)
    for rep in range(repeats):
        for config in CONFIGS:  # interleaved: rank, screen, rank, ...
            wall, n = RUNNERS[config](ctx)
            times[config].append(wall)
            counts[config] = n
            print(
                f"rep {rep + 1}/{repeats} {config:>15}: {wall:.4f}s "
                f"({n / wall:,.0f}/s)",
                file=sys.stderr,
            )
    configs = {}
    for config, walls in times.items():
        mean = statistics.mean(walls)
        configs[config] = {
            "mean_s": round(mean, 5),
            "stdev_s": round(
                statistics.stdev(walls) if len(walls) > 1 else 0.0, 5
            ),
            "min_s": round(min(walls), 5),
            "repeats": repeats,
            "items": counts[config],
            "rate_per_s": round(counts[config] / mean, 1),
        }
    rank_rate = configs["surrogate_rank"]["rate_per_s"]
    screen_rate = configs["flow_screen"]["rate_per_s"]
    leverage = rank_rate / screen_rate if screen_rate else 0.0
    print(f"surrogate ranking rate: {rank_rate:,.0f} candidates/s", file=sys.stderr)
    print(f"flow screening rate: {screen_rate:,.1f} cells/s", file=sys.stderr)
    print(f"tier leverage (rank/screen): {leverage:,.0f}x", file=sys.stderr)
    return {
        "schema": SCHEMA,
        "scenario": SCENARIO,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "configs": configs,
        "rank_rate": rank_rate,
        "screen_rate": screen_rate,
        "leverage": round(leverage, 1),
    }


def compare(
    doc: dict,
    ref_path: Path,
    max_regression: float,
    min_rank_rate: float,
) -> int:
    """Gate ``doc`` against a reference file; returns the exit code."""
    ref = json.loads(ref_path.read_text())
    baseline = ref.get("after", ref)  # PR files keep before/after blocks
    if baseline.get("schema") != SCHEMA:
        print(f"schema mismatch in {ref_path}, skipping gate", file=sys.stderr)
        return 0
    failed = False
    for config, cfg in baseline["configs"].items():
        cur = doc["configs"].get(config)
        if cur is None:
            print(f"MISSING  {config}: not measured", file=sys.stderr)
            failed = True
            continue
        ratio = cur["rate_per_s"] / cfg["rate_per_s"]
        status = "OK" if ratio >= 1.0 - max_regression else "REGRESSED"
        print(
            f"{status:>9}  {config}: {cur['rate_per_s']:,}/s vs "
            f"reference {cfg['rate_per_s']:,}/s ({ratio:.2f}x)",
            file=sys.stderr,
        )
        if status != "OK":
            failed = True
    status = "OK" if doc["rank_rate"] >= min_rank_rate else "REGRESSED"
    print(
        f"{status:>9}  rank rate: {doc['rank_rate']:,.0f}/s "
        f"(floor {min_rank_rate:,.0f}/s)",
        file=sys.stderr,
    )
    if status != "OK":
        failed = True
    return 1 if failed else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--repeats", type=int, default=5, help="timed runs per configuration"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="2 repeats (CI smoke mode)",
    )
    parser.add_argument(
        "--out", default=None, metavar="JSON", help="write results to file"
    )
    parser.add_argument(
        "--compare",
        default=None,
        metavar="JSON",
        help="reference BENCH_advisor.json to gate rates against",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.35,
        help=(
            "tolerated fractional rate drop vs reference (default 0.35: "
            "tier-1 walls are milliseconds, so shared-runner noise is "
            "proportionally larger than on the minutes-long flow bench)"
        ),
    )
    parser.add_argument(
        "--min-rank-rate",
        type=float,
        default=1000.0,
        help=(
            "minimum surrogate candidates ranked per second "
            "(default 1000, the DESIGN.md S20 acceptance floor)"
        ),
    )
    args = parser.parse_args(argv)

    repeats = 2 if args.quick else args.repeats
    doc = bench(repeats=repeats, warmup=1)

    if args.out:
        Path(args.out).write_text(json.dumps(doc, indent=2) + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        print(json.dumps(doc, indent=2))

    if args.compare:
        return compare(
            doc,
            Path(args.compare),
            args.max_regression,
            args.min_rank_rate,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
