"""Figure 6: AMG channel traffic and link saturation.

(a) local channel traffic CDF, (b) local link saturation CDF,
(c) global channel traffic CDF, (d) global link saturation CDF —
for all 10 placement x routing configurations.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _common import app_grid, save_report

from repro.core.report import format_cdf_table


def test_fig6_amg_network(benchmark):
    grid = benchmark.pedantic(lambda: app_grid("AMG"), rounds=1, iterations=1)

    sections = [
        format_cdf_table(
            grid.traffic_cdf("AMG", "local"),
            "Figure 6(a) — AMG local channel traffic CDF",
            "MB",
        ),
        format_cdf_table(
            grid.saturation_cdf("AMG", "local"),
            "Figure 6(b) — AMG local link saturation CDF",
            "ms",
        ),
        format_cdf_table(
            grid.traffic_cdf("AMG", "global"),
            "Figure 6(c) — AMG global channel traffic CDF",
            "MB",
        ),
        format_cdf_table(
            grid.saturation_cdf("AMG", "global"),
            "Figure 6(d) — AMG global link saturation CDF",
            "ms",
        ),
    ]
    save_report("fig6_amg_network", "\n\n".join(sections))

    m = {label: grid.get("AMG", label).metrics for label in grid.labels()}
    # cont-min: "a small number of channels having a large amount of
    # traffic" -> localized placements saturate local links far more
    # than balanced placement under minimal routing (Figs 6a/6b).
    assert m["cont-min"].total_local_sat_ns > 3 * m["rand-min"].total_local_sat_ns
    assert m["cab-min"].total_local_sat_ns > m["rand-min"].total_local_sat_ns
    # The busiest localized channel out-saturates the busiest balanced one.
    assert m["cont-min"].local_sat_ns.max() > m["rand-min"].local_sat_ns.max()
    # cont-adp achieves fewer hops than rand-adp while staying
    # competitive on comm time (the paper's argument for AMG's winner).
    assert m["cont-adp"].mean_hops < m["rand-adp"].mean_hops
