"""Figure 4: CR average hops, channel traffic, and link saturation.

(a) CDF of per-rank average hops, (b) CDF of local channel traffic,
(c) CDF of local link saturation time, (d) CDF of global link
saturation time — for all 10 placement x routing configurations.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _common import app_grid, save_report

from repro.core.report import format_cdf_table


def test_fig4_cr_network(benchmark):
    grid = benchmark.pedantic(lambda: app_grid("CR"), rounds=1, iterations=1)

    sections = [
        format_cdf_table(
            grid.hops_cdf("CR"), "Figure 4(a) — CR average hops CDF", "hops"
        ),
        format_cdf_table(
            grid.traffic_cdf("CR", "local"),
            "Figure 4(b) — CR local channel traffic CDF",
            "MB",
        ),
        format_cdf_table(
            grid.saturation_cdf("CR", "local"),
            "Figure 4(c) — CR local link saturation CDF",
            "ms",
        ),
        format_cdf_table(
            grid.saturation_cdf("CR", "global"),
            "Figure 4(d) — CR global link saturation CDF",
            "ms",
        ),
    ]
    save_report("fig4_cr_network", "\n\n".join(sections))

    # Paper shape: contiguous has fewer hops than random-node; minimal
    # fewer than adaptive; localized placement saturates local links
    # more than balanced placement (Fig 4c) under either routing.
    m = {label: grid.get("CR", label).metrics for label in grid.labels()}
    assert m["cont-min"].mean_hops < m["rand-min"].mean_hops
    assert m["cont-min"].mean_hops <= m["cont-adp"].mean_hops
    assert m["rand-min"].mean_hops <= m["rand-adp"].mean_hops
    assert m["cont-min"].total_local_sat_ns > m["rand-min"].total_local_sat_ns
    assert m["cont-adp"].total_local_sat_ns > m["rand-adp"].total_local_sat_ns
    # Balanced placement wins for CR (paper: up to 8% over contiguous).
    assert m["rand-min"].max_comm_time_ns < m["cont-min"].max_comm_time_ns
